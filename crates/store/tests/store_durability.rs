//! Property tests for the crash-durable store: random interleavings of
//! ingest / seal / compact / snapshot / crash+reopen must be
//! indistinguishable from an uninterrupted run, and corrupted on-disk
//! artefacts (segment blobs, WAL frames) must surface as [`PdsError`]s —
//! never panics, never silently wrong answers.
//!
//! The "crash" op drops the durable store and reopens its directory.  That
//! is a faithful crash at this op granularity: every `ingest` call
//! group-commits its WAL appends before returning and manifest writes are
//! unbuffered, so the dropped handle holds no state a real crash would
//! lose — the truly torn states (mid-seal, mid-compaction, mid-publish)
//! are covered by the subprocess crash matrix in `store_crash_matrix.rs`.
//!
//! The fault-interleaving property layers the deterministic vfs fault
//! injector on top: random ops with random transient-or-exhausting faults
//! armed around them must keep the acknowledged prefix bitwise-equal to an
//! uninterrupted mirror, degrade instead of corrupting when the retry
//! budget is exhausted, and recover cleanly at the next reopen.  (The
//! exhaustive per-site × per-class sweep is `store_fault_matrix.rs`; this
//! property covers the *interleavings* the sweep's fixed scripts cannot.)
//!
//! [`PdsError`]: pds_core::error::PdsError

use proptest::prelude::*;

use pds_core::error::PdsError;
use pds_core::metrics::ErrorMetric;
use pds_core::stream::StreamRecord;
use pds_core::vfs::fault::{self, ErrorClass, FaultSpec};
use pds_store::{CompactionPolicy, PartitionSpec, StoreConfig, SynopsisKind, SynopsisStore};

const N: usize = 24;
const PARTS: usize = 2;

fn config() -> StoreConfig {
    let mut cfg = StoreConfig::new(
        PartitionSpec::uniform(N, PARTS).unwrap(),
        5,
        N, // full budget: exact segments, so compaction order cannot drift
        SynopsisKind::Histogram(ErrorMetric::Sse),
    );
    cfg.compaction = Some(CompactionPolicy {
        min_merge: 2,
        tier_ratio: 3.0,
    });
    cfg
}

fn unique_dir(tag: &str, case: u64) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "pds-durability-{tag}-{case}-{}",
        std::process::id()
    ))
}

/// One scripted operation of the interleaving property.
#[derive(Debug, Clone)]
enum Op {
    Ingest(StreamRecord),
    Seal(usize),
    Compact(usize),
    Snapshot,
    CrashReopen,
}

/// Strategy: a random op sequence.  Kind 0-2 ingests (two record shapes),
/// 3 seals a partition, 4 compacts one, 5 snapshots, 6 crash+reopens.
fn ops(max_len: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        (0usize..7, 0usize..PARTS, (0..N, 0.01f64..0.9), 0.5f64..4.0),
        1..max_len,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .map(|(kind, p, (item, prob), value)| match kind {
                0 | 1 => Op::Ingest(StreamRecord::Basic { item, prob }),
                2 => Op::Ingest(StreamRecord::ValueDistribution {
                    item,
                    entries: vec![(value, prob)],
                }),
                3 => Op::Seal(p),
                4 => Op::Compact(p),
                5 => Op::Snapshot,
                _ => Op::CrashReopen,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Interleaving equivalence: a durable store that crashes and reopens
    /// at arbitrary points answers every query — and serialises every
    /// segment — exactly like an uninterrupted in-memory store driven by
    /// the same op sequence.
    #[test]
    fn interleaved_crash_reopen_matches_uninterrupted_run(
        script in ops(40),
        case in 0u64..u64::MAX,
    ) {
        let dir = unique_dir("interleave", case);
        let _ = std::fs::remove_dir_all(&dir);
        let mirror = SynopsisStore::new(config()).unwrap();
        let mut durable = SynopsisStore::open_with_wal(config(), &dir).unwrap();
        let mut reopened_at_least_once = false;
        for op in &script {
            match op {
                Op::Ingest(record) => {
                    mirror.ingest(record.clone()).unwrap();
                    durable.ingest(record.clone()).unwrap();
                }
                Op::Seal(p) => {
                    mirror.seal_partition(*p).unwrap();
                    durable.seal_partition(*p).unwrap();
                }
                Op::Compact(p) => {
                    mirror.compact_partition(*p).unwrap();
                    durable.compact_partition(*p).unwrap();
                }
                Op::Snapshot => {
                    let a = mirror.snapshot().unwrap();
                    let b = durable.snapshot().unwrap();
                    if !reopened_at_least_once {
                        // Counters restart at a reopen (documented), so the
                        // byte-exact claim holds for uninterrupted prefixes.
                        prop_assert_eq!(&a, &b);
                    }
                }
                Op::CrashReopen => {
                    drop(durable);
                    durable = SynopsisStore::open_with_wal(config(), &dir).unwrap();
                    reopened_at_least_once = true;
                }
            }
            // Queries agree bitwise after every op: replay reproduces the
            // exact insertion order per partition and blobs round-trip
            // f64 bit patterns, so this is not a tolerance comparison.
            for (lo, hi) in [(0usize, N - 1), (0, 9), (10, 17), (5, 5), (20, 23)] {
                prop_assert_eq!(
                    durable.range_estimate(lo, hi),
                    mirror.range_estimate(lo, hi),
                    "range [{}, {}] after {:?}", lo, hi, op
                );
            }
        }
        // Final state: segments identical (the byte payloads of to_binary
        // minus the documented post-recovery counters)...
        mirror.seal_all().unwrap();
        durable.seal_all().unwrap();
        for p in 0..PARTS {
            prop_assert_eq!(durable.segments(p), mirror.segments(p), "partition {}", p);
        }
        // ... and on never-crashed runs the whole snapshot is byte-equal.
        if !reopened_at_least_once {
            prop_assert_eq!(durable.to_binary().unwrap(), mirror.to_binary().unwrap());
        }
        // One last crash: everything sealed must come back from blobs alone.
        drop(durable);
        let recovered = SynopsisStore::open_with_wal(config(), &dir).unwrap();
        for (lo, hi) in [(0usize, N - 1), (3, 19)] {
            prop_assert_eq!(recovered.range_estimate(lo, hi), mirror.range_estimate(lo, hi));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Bit-flipping or truncating a segment blob is detected by the blob
    /// CRCs at **eager** reopen: an error naming the blob, never a panic,
    /// never a store that silently answers from corrupt bytes.  (Under the
    /// default lazy opening only the footer and meta block are verified at
    /// open; a corrupt *synopsis block* is caught at first touch and
    /// degrades instead — pinned by
    /// `lazy_reopen_defers_synopsis_corruption_to_first_touch` below.)
    #[test]
    fn corrupted_segment_blobs_fail_reopen_cleanly(
        records in prop::collection::vec((0..N, 0.01f64..0.9), 12..40),
        flip_frac in 0.0f64..1.0,
        flip_bit in 0usize..8,
        truncate_frac in 0.0f64..1.0,
        case in 0u64..u64::MAX,
    ) {
        let config = || {
            let mut cfg = config();
            cfg.lazy_blocks = false;
            cfg
        };
        let dir = unique_dir("blob-corrupt", case);
        let _ = std::fs::remove_dir_all(&dir);
        {
            let store = SynopsisStore::open_with_wal(config(), &dir).unwrap();
            for &(item, prob) in &records {
                store.ingest(StreamRecord::Basic { item, prob }).unwrap();
            }
            store.seal_all().unwrap();
        }
        let blob_path = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .find(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("seg-") && n.ends_with(".bin"))
            })
            .expect("a sealed store leaves at least one blob");
        let blob = std::fs::read(&blob_path).unwrap();

        // Any single-bit flip anywhere in the blob fails the CRC.
        let mut flipped = blob.clone();
        let pos = ((blob.len() as f64 * flip_frac) as usize).min(blob.len() - 1);
        flipped[pos] ^= 1u8 << flip_bit;
        std::fs::write(&blob_path, &flipped).unwrap();
        prop_assert!(SynopsisStore::open_with_wal(config(), &dir).is_err());

        // Any strict prefix fails too (torn blob write — though installs
        // publish via tmp-rename, so this models disk-level damage).
        let cut = ((blob.len() as f64 * truncate_frac) as usize).min(blob.len() - 1);
        std::fs::write(&blob_path, &blob[..cut]).unwrap();
        prop_assert!(SynopsisStore::open_with_wal(config(), &dir).is_err());

        // Restoring the original bytes restores the store.
        std::fs::write(&blob_path, &blob).unwrap();
        prop_assert!(SynopsisStore::open_with_wal(config(), &dir).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Bit-flipping any non-final WAL frame aborts the reopen with every
    /// file intact (the final frame is the documented torn-tail window and
    /// is covered by the deterministic tests in `wal.rs`).
    #[test]
    fn corrupted_wal_frames_fail_reopen_cleanly(
        records in prop::collection::vec((0..N, 0.01f64..0.9), 4..30),
        line_frac in 0.0f64..1.0,
        flip_bit in 0usize..7,
        case in 0u64..u64::MAX,
    ) {
        let dir = unique_dir("wal-corrupt", case);
        let _ = std::fs::remove_dir_all(&dir);
        {
            // A huge threshold keeps every record in the live WAL.
            let mut cfg = config();
            cfg.seal_threshold = usize::MAX >> 1;
            let store = SynopsisStore::open_with_wal(cfg, &dir).unwrap();
            for &(item, prob) in &records {
                store.ingest(StreamRecord::Basic { item, prob }).unwrap();
            }
        }
        let log_path = (0..PARTS)
            .map(|p| dir.join(format!("wal-{p}.log")))
            .find(|p| std::fs::metadata(p).map(|m| m.len() > 0).unwrap_or(false))
            .expect("some partition logged records");
        let text = std::fs::read_to_string(&log_path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // With a single frame the flip would land in the torn-tail window,
        // which the deterministic `wal.rs` tests cover; corrupt mid-file
        // only when there is a mid-file.
        if lines.len() >= 2 {
            // Flip one character of a non-final frame (never the newline).
            let target = ((lines.len() - 1) as f64 * line_frac) as usize;
            let target = target.min(lines.len() - 2);
            let line = lines[target];
            let col = line.len() / 2;
            let mut corrupt_line = line.as_bytes().to_vec();
            corrupt_line[col] ^= 1u8 << flip_bit;
            let mut rebuilt: Vec<String> = Vec::new();
            for (i, l) in lines.iter().enumerate() {
                rebuilt.push(if i == target {
                    String::from_utf8_lossy(&corrupt_line).into_owned()
                } else {
                    (*l).to_string()
                });
            }
            std::fs::write(&log_path, format!("{}\n", rebuilt.join("\n"))).unwrap();
            let result = SynopsisStore::open_with_wal(config(), &dir);
            prop_assert!(
                result.is_err(),
                "a corrupt mid-file frame must abort the reopen ({:?})",
                log_path
            );
            // The scan is read-only: the corrupt file survives.
            prop_assert!(log_path.exists());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Sites a runtime mutation (ingest / seal / compact) can cross, in the
/// order the fault plan indexes them.
const RUNTIME_SITES: [&str; 9] = [
    "wal-append",
    "wal-commit",
    "wal-rotate",
    "blob-write",
    "blob-publish",
    "manifest-install",
    "manifest-replace",
    "wal-retire",
    "cleanup",
];

/// Sites a reopen crosses (recovery reads, the WAL re-commit, the manifest
/// republish and the orphan/stale sweeps).
const REOPEN_SITES: [&str; 4] = [
    "recovery-read",
    "recovery-commit",
    "manifest-replace",
    "cleanup",
];

/// One entry of the fault plan: which site and class to arm around the
/// same-indexed op, and whether the fault is transient (one failing op —
/// inside the default retry budget) or persistent enough to exhaust it.
#[derive(Debug, Clone, Copy)]
struct PlannedFault {
    site_idx: usize,
    class_idx: usize,
    transient: bool,
}

fn fault_plan(max_len: usize) -> impl Strategy<Value = Vec<Option<PlannedFault>>> {
    prop::collection::vec(
        prop::option::weighted(
            0.4,
            (
                0..RUNTIME_SITES.len(),
                0..ErrorClass::ALL.len(),
                any::<bool>(),
            )
                .prop_map(|(site_idx, class_idx, transient)| PlannedFault {
                    site_idx,
                    class_idx,
                    transient,
                }),
        ),
        max_len,
    )
}

fn ranges_match(a: &SynopsisStore, b: &SynopsisStore) -> bool {
    [(0usize, N - 1), (0, 9), (10, 17), (5, 5), (20, 23)]
        .into_iter()
        .all(|(lo, hi)| a.range_estimate(lo, hi) == b.range_estimate(lo, hi))
}

/// Config for the fault-interleaving property: seals and compactions are
/// script-driven only (huge threshold, no auto-compaction policy), so
/// every failed op is all-or-nothing — a degraded durable store and the
/// acked-prefix mirror always share the same memtable/segment structure,
/// which is what makes the bitwise comparison sound.
fn fault_config() -> StoreConfig {
    let mut cfg = config();
    cfg.seal_threshold = usize::MAX >> 1;
    cfg.compaction = None;
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Fault interleaving: random transient-or-exhausting injected faults
    /// around random ops never corrupt the acknowledged prefix.  Every op
    /// the durable store acknowledges is mirrored in-memory and the two
    /// must agree bitwise after every healthy step; an exhausted retry
    /// budget must surface as sticky [`PdsError::Degraded`] (never a
    /// panic, never a wrong answer), and the next fault-free reopen must
    /// recover a healthy store serving the acknowledged records — with at
    /// most the one unacknowledged in-flight record over-included.
    #[test]
    fn injected_faults_never_corrupt_the_acknowledged_prefix(
        script in ops(24),
        plan in fault_plan(24),
        case in 0u64..u64::MAX,
    ) {
        let dir = unique_dir("fault-interleave", case);
        let _ = std::fs::remove_dir_all(&dir);
        let mirror = SynopsisStore::new(fault_config()).unwrap();
        let mut durable = SynopsisStore::open_with_wal(fault_config(), &dir).unwrap();
        // The unacknowledged record a failed ingest may have over-included
        // in the memtable (the documented wal-commit window).
        let mut over: Option<StreamRecord> = None;
        let mut degraded = false;

        for (i, op) in script.iter().enumerate() {
            let fault = plan.get(i).copied().flatten();
            if let Op::CrashReopen = op {
                drop(durable);
                let guard = fault.map(|f| {
                    let site = REOPEN_SITES[f.site_idx % REOPEN_SITES.len()];
                    let count = if f.transient { 1 } else { 4 };
                    fault::arm(
                        FaultSpec::transient(site, ErrorClass::ALL[f.class_idx], 1, count)
                            .scoped(&dir),
                    )
                });
                durable = match SynopsisStore::open_with_wal(fault_config(), &dir) {
                    Ok(store) => store,
                    Err(_) => {
                        // A faulted recovery aborts the open cleanly; the
                        // fault-free retry must succeed.
                        drop(guard);
                        SynopsisStore::open_with_wal(fault_config(), &dir).unwrap()
                    }
                };
                prop_assert!(durable.degraded().is_none());
                prop_assert!(ranges_match(&durable, &mirror), "after reopen {}", i);
                continue;
            }

            let guard = fault.map(|f| {
                let count = if f.transient { 1 } else { 4 };
                fault::arm(
                    FaultSpec::transient(
                        RUNTIME_SITES[f.site_idx],
                        ErrorClass::ALL[f.class_idx],
                        1,
                        count,
                    )
                    .scoped(&dir),
                )
            });
            let result = match op {
                Op::Ingest(record) => durable.ingest(record.clone()),
                Op::Seal(p) => durable.seal_partition(*p).map(|_| ()),
                Op::Compact(p) => durable.compact_partition(*p),
                Op::Snapshot => {
                    // A pure read under an armed fault: the snapshot view
                    // touches no disk and must keep answering correctly.
                    let view = durable.snapshot_view();
                    prop_assert_eq!(
                        view.range_estimate(0, N - 1),
                        mirror.range_estimate(0, N - 1),
                        "snapshot view at op {}", i
                    );
                    Ok(())
                }
                Op::CrashReopen => unreachable!("handled above"),
            };
            drop(guard);
            match result {
                Ok(()) => {
                    // Acknowledged: the mirror applies the same op and the
                    // two must stay bitwise-identical.
                    match op {
                        Op::Ingest(record) => mirror.ingest(record.clone()).unwrap(),
                        Op::Seal(p) => {
                            mirror.seal_partition(*p).unwrap();
                        }
                        Op::Compact(p) => mirror.compact_partition(*p).unwrap(),
                        Op::Snapshot => {}
                        Op::CrashReopen => unreachable!(),
                    }
                    prop_assert!(ranges_match(&durable, &mirror), "after acked op {}", i);
                }
                Err(e) => {
                    prop_assert!(
                        matches!(e, PdsError::Degraded { .. }),
                        "a faulted mutation must degrade, got {:?}",
                        e
                    );
                    prop_assert!(durable.degraded().is_some());
                    if let Op::Ingest(record) = op {
                        over = Some(record.clone());
                    }
                    degraded = true;
                    break;
                }
            }
        }

        if degraded {
            // Sticky: further mutations are refused without touching the
            // (now healthy) disk, and queries keep serving.
            let refused = durable.ingest(StreamRecord::Basic { item: 0, prob: 0.1 });
            prop_assert!(matches!(refused, Err(PdsError::Degraded { .. })));
        }

        // The fault-free reopen recovers every acknowledged record; a
        // failed ingest may additionally have over-included its one
        // unacknowledged record.
        drop(durable);
        let reopened = SynopsisStore::open_with_wal(fault_config(), &dir).unwrap();
        prop_assert!(reopened.degraded().is_none());
        let mut matches = ranges_match(&reopened, &mirror);
        if !matches {
            if let Some(record) = over {
                mirror.ingest(record).unwrap();
                matches = ranges_match(&reopened, &mirror);
            }
        }
        prop_assert!(
            matches,
            "the reopened store must serve exactly the acknowledged prefix \
             (plus at most the in-flight record)"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Under the default lazy opening, a corrupt **synopsis block** is not
/// verified at reopen — only the footer and meta block are — so the open
/// succeeds and the corruption surfaces at the first query touching the
/// segment: the store degrades (sticky, cause-recorded, naming the
/// `block-read` site) and the unreadable segment stops contributing to
/// answers, rather than panicking or serving corrupt bytes.  Restoring
/// the original bytes and reopening recovers a healthy store.  The
/// eager-mode companion contract (corruption anywhere fails the open) is
/// `corrupted_segment_blobs_fail_reopen_cleanly` above.
#[test]
fn lazy_reopen_defers_synopsis_corruption_to_first_touch() {
    let dir = unique_dir("blob-lazy-corrupt", 0);
    let _ = std::fs::remove_dir_all(&dir);
    {
        let store = SynopsisStore::open_with_wal(config(), &dir).unwrap();
        for i in 0..N {
            store
                .ingest(StreamRecord::Basic { item: i, prob: 0.5 })
                .unwrap();
        }
        store.seal_all().unwrap();
    }
    let blob_path = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("seg-") && n.ends_with(".bin"))
        })
        .expect("a sealed store leaves at least one blob");
    let blob = std::fs::read(&blob_path).unwrap();
    let footer = pds_store::blob::decode_footer(&blob).unwrap();
    let mut corrupt = blob.clone();
    let pos = footer.synopsis_offset() as usize + footer.syn_len as usize / 2;
    corrupt[pos] ^= 0x01;
    std::fs::write(&blob_path, &corrupt).unwrap();

    // The footer and meta block still verify, so the lazy open succeeds…
    let store = SynopsisStore::open_with_wal(config(), &dir).unwrap();
    assert!(store.degraded().is_none());
    // …and the corruption surfaces at the first touch as a degrade, with
    // the rest of the store still serving.
    let _ = store.range_estimate(0, N - 1);
    let cause = store.degraded().expect("first touch must degrade");
    assert!(cause.contains("block-read"), "unexpected cause: {cause}");
    drop(store);

    // Restoring the bytes restores a healthy store.
    std::fs::write(&blob_path, &blob).unwrap();
    let healthy = SynopsisStore::open_with_wal(config(), &dir).unwrap();
    let _ = healthy.range_estimate(0, N - 1);
    assert!(healthy.degraded().is_none());
    let _ = std::fs::remove_dir_all(&dir);
}
