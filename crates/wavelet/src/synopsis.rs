//! The wavelet synopsis type: a sparse set of retained Haar coefficients.

use serde::{Deserialize, Serialize};

use pds_core::binio::{ByteReader, ByteWriter};
use pds_core::error::{PdsError, Result};

use crate::haar::{next_power_of_two, reconstruct_sparse_unnormalised};

/// A retained Haar coefficient: its index in the error tree and its value in
/// the **unnormalised** convention (so reconstruction is a plain signed sum
/// along root-to-leaf paths).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetainedCoefficient {
    /// Coefficient index (0 = overall average).
    pub index: usize,
    /// Retained (unnormalised) coefficient value.
    pub value: f64,
}

/// A `B`-term Haar wavelet synopsis over a domain of `n` items.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WaveletSynopsis {
    n: usize,
    retained: Vec<RetainedCoefficient>,
}

impl WaveletSynopsis {
    /// Builds a synopsis from retained coefficients, validating indices and
    /// rejecting duplicates.
    pub fn new(n: usize, retained: Vec<RetainedCoefficient>) -> Result<Self> {
        if n == 0 {
            return Err(PdsError::InvalidParameter {
                message: "the domain must be non-empty".into(),
            });
        }
        let padded = next_power_of_two(n);
        let mut seen = vec![false; padded];
        for c in &retained {
            if c.index >= padded {
                return Err(PdsError::InvalidParameter {
                    message: format!(
                        "coefficient index {} outside the padded domain [0, {padded})",
                        c.index
                    ),
                });
            }
            if seen[c.index] {
                return Err(PdsError::InvalidParameter {
                    message: format!("coefficient {} retained twice", c.index),
                });
            }
            seen[c.index] = true;
        }
        let mut retained = retained;
        retained.sort_by_key(|c| c.index);
        Ok(WaveletSynopsis { n, retained })
    }

    /// Domain size `n` (unpadded).
    pub fn n(&self) -> usize {
        self.n
    }

    /// The retained coefficients, sorted by index.
    pub fn retained(&self) -> &[RetainedCoefficient] {
        &self.retained
    }

    /// Number of retained coefficients (the synopsis size `B`).
    pub fn len(&self) -> usize {
        self.retained.len()
    }

    /// Whether no coefficient is retained (the all-zeros approximation).
    pub fn is_empty(&self) -> bool {
        self.retained.is_empty()
    }

    /// The retained coefficient indices.
    pub fn indices(&self) -> Vec<usize> {
        self.retained.iter().map(|c| c.index).collect()
    }

    /// Reconstructs the approximate frequency vector `ĝ` implied by the
    /// synopsis (non-retained coefficients are treated as zero).
    pub fn reconstruct(&self) -> Vec<f64> {
        let retained: Vec<(usize, f64)> =
            self.retained.iter().map(|c| (c.index, c.value)).collect();
        reconstruct_sparse_unnormalised(self.n, &retained)
    }

    /// The estimate `ĝ_i` for a single item.
    pub fn estimate(&self, i: usize) -> f64 {
        self.reconstruct()[i]
    }

    /// The wavelet JSON envelope version written by
    /// [`WaveletSynopsis::to_json`].
    pub const FORMAT_VERSION: u32 = 1;

    /// Magic bytes of the compact binary encoding.
    pub const BINARY_MAGIC: [u8; 4] = *b"PDSW";

    /// Version stamp of the compact binary encoding written by
    /// [`WaveletSynopsis::to_binary`].
    pub const BINARY_VERSION: u16 = 1;

    /// Re-checks every structural invariant: coefficient indices inside the
    /// padded domain, no duplicates, sorted order, and finite values.
    ///
    /// `WaveletSynopsis::new` establishes these at construction time; this
    /// is the entry point for synopses that arrived from outside (a segment
    /// file, a catalog) where the invariants cannot be assumed.
    pub fn validate(&self) -> Result<()> {
        WaveletSynopsis::new(self.n, self.retained.clone())?;
        for (k, c) in self.retained.iter().enumerate() {
            if !c.value.is_finite() {
                return Err(PdsError::InvalidParameter {
                    message: format!("coefficient {} has non-finite value {}", c.index, c.value),
                });
            }
            if k > 0 && self.retained[k - 1].index >= c.index {
                return Err(PdsError::InvalidParameter {
                    message: "retained coefficients are not sorted by index".into(),
                });
            }
        }
        Ok(())
    }

    /// Serialises the synopsis into a versioned JSON envelope, mirroring
    /// `Histogram::to_json`: a [`PdsError`] on unserialisable values (e.g.
    /// NaN coefficients) instead of a panic, with the format version and the
    /// retained-coefficient count stamped so that
    /// [`WaveletSynopsis::from_json`] can detect skew and truncation.
    pub fn to_json(&self) -> Result<String> {
        // Symmetric with `from_json`: refuse to persist a synopsis the
        // reader would reject, so corruption surfaces at the writer.
        self.validate()?;
        let envelope = WaveletEnvelope {
            version: Self::FORMAT_VERSION,
            num_coefficients: self.retained.len(),
            synopsis: self.clone(),
        };
        serde_json::to_string(&envelope).map_err(|e| PdsError::InvalidParameter {
            message: format!("wavelet synopsis serialisation failed: {e}"),
        })
    }

    /// Parses a synopsis from the versioned JSON envelope, rejecting
    /// truncated input, version skew, coefficient-count mismatches and
    /// structurally invalid synopses with a [`PdsError`] — never a panic.
    pub fn from_json(text: &str) -> Result<Self> {
        let envelope: WaveletEnvelope =
            serde_json::from_str(text).map_err(|e| PdsError::InvalidParameter {
                message: format!("wavelet synopsis deserialisation failed: {e}"),
            })?;
        if envelope.version != Self::FORMAT_VERSION {
            return Err(PdsError::InvalidParameter {
                message: format!(
                    "wavelet envelope version {} is not supported (expected {})",
                    envelope.version,
                    Self::FORMAT_VERSION
                ),
            });
        }
        if envelope.num_coefficients != envelope.synopsis.retained.len() {
            return Err(PdsError::InvalidParameter {
                message: format!(
                    "envelope declares {} coefficients but the synopsis carries {}",
                    envelope.num_coefficients,
                    envelope.synopsis.retained.len()
                ),
            });
        }
        envelope.synopsis.validate()?;
        Ok(envelope.synopsis)
    }

    /// Serialises the synopsis into the compact binary format: a versioned
    /// envelope, the domain size, then the retained coefficients as
    /// delta-encoded index varints (indices are sorted) plus raw IEEE-754
    /// values.  JSON stays available as the debug encoding.
    pub fn to_binary(&self) -> Result<Vec<u8>> {
        self.validate()?;
        let mut w = ByteWriter::envelope(Self::BINARY_MAGIC, Self::BINARY_VERSION);
        w.put_varint(self.n as u64);
        w.put_varint(self.retained.len() as u64);
        let mut prev = 0usize;
        for c in &self.retained {
            w.put_varint((c.index - prev) as u64);
            w.put_f64(c.value);
            prev = c.index;
        }
        Ok(w.into_bytes())
    }

    /// Parses a synopsis from the compact binary format, turning truncated
    /// input, bad magic, version skew and structurally invalid synopses into
    /// [`PdsError`]s — never a panic.
    pub fn from_binary(bytes: &[u8]) -> Result<Self> {
        let (mut r, version) = ByteReader::envelope(bytes, "wavelet synopsis", Self::BINARY_MAGIC)?;
        if version != Self::BINARY_VERSION {
            return Err(PdsError::InvalidParameter {
                message: format!(
                    "wavelet binary version {version} is not supported (expected {})",
                    Self::BINARY_VERSION
                ),
            });
        }
        let n = r.get_len(u32::MAX as usize)?;
        let count = r.get_len(next_power_of_two(n))?;
        let mut retained = Vec::with_capacity(count);
        let mut index = 0usize;
        for _ in 0..count {
            // Symmetric with the writer: each varint is the distance to the
            // previous (sorted) index; a zero delta after the first
            // coefficient decodes to a duplicate, which validation rejects.
            index += r.get_len(next_power_of_two(n))?;
            retained.push(RetainedCoefficient {
                index,
                value: r.get_f64()?,
            });
        }
        r.finish()?;
        let synopsis = WaveletSynopsis::new(n, retained)?;
        synopsis.validate()?;
        Ok(synopsis)
    }
}

/// Versioned wire envelope for [`WaveletSynopsis::to_json`] /
/// [`WaveletSynopsis::from_json`].
#[derive(Serialize, Deserialize)]
struct WaveletEnvelope {
    version: u32,
    num_coefficients: usize,
    synopsis: WaveletSynopsis,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::haar::HaarTransform;

    #[test]
    fn retaining_every_coefficient_reconstructs_the_data() {
        let data = [2.0, 2.0, 0.0, 2.0, 3.0, 5.0, 4.0, 4.0];
        let t = HaarTransform::forward(&data);
        let retained: Vec<RetainedCoefficient> = t
            .unnormalised()
            .iter()
            .enumerate()
            .map(|(index, &value)| RetainedCoefficient { index, value })
            .collect();
        let syn = WaveletSynopsis::new(8, retained).unwrap();
        assert_eq!(syn.len(), 8);
        let back = syn.reconstruct();
        for (a, b) in data.iter().zip(&back) {
            assert!((a - b).abs() < 1e-12);
        }
        assert!((syn.estimate(5) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn empty_synopsis_reconstructs_zeros() {
        let syn = WaveletSynopsis::new(5, vec![]).unwrap();
        assert!(syn.is_empty());
        assert_eq!(syn.reconstruct(), vec![0.0; 5]);
    }

    #[test]
    fn invalid_synopses_are_rejected() {
        assert!(WaveletSynopsis::new(0, vec![]).is_err());
        assert!(WaveletSynopsis::new(
            4,
            vec![RetainedCoefficient {
                index: 9,
                value: 1.0
            }],
        )
        .is_err());
        assert!(WaveletSynopsis::new(
            4,
            vec![
                RetainedCoefficient {
                    index: 1,
                    value: 1.0
                },
                RetainedCoefficient {
                    index: 1,
                    value: 2.0
                },
            ],
        )
        .is_err());
    }

    #[test]
    fn retained_are_sorted_and_indices_exposed() {
        let syn = WaveletSynopsis::new(
            8,
            vec![
                RetainedCoefficient {
                    index: 5,
                    value: 1.0,
                },
                RetainedCoefficient {
                    index: 0,
                    value: 2.0,
                },
            ],
        )
        .unwrap();
        assert_eq!(syn.indices(), vec![0, 5]);
        assert_eq!(syn.n(), 8);
    }

    #[test]
    fn serde_round_trip() {
        let syn = WaveletSynopsis::new(
            8,
            vec![RetainedCoefficient {
                index: 0,
                value: 2.75,
            }],
        )
        .unwrap();
        let json = serde_json::to_string(&syn).unwrap();
        let back: WaveletSynopsis = serde_json::from_str(&json).unwrap();
        assert_eq!(syn, back);
    }

    fn envelope_sample() -> WaveletSynopsis {
        let data = [2.0, 2.0, 0.0, 2.0, 3.0, 5.0, 4.0, 4.0];
        let t = HaarTransform::forward(&data);
        let retained: Vec<RetainedCoefficient> = t
            .unnormalised()
            .iter()
            .enumerate()
            .step_by(2)
            .map(|(index, &value)| RetainedCoefficient { index, value })
            .collect();
        WaveletSynopsis::new(8, retained).unwrap()
    }

    #[test]
    fn json_envelope_round_trips_and_versions() {
        let syn = envelope_sample();
        let json = syn.to_json().unwrap();
        assert!(json.contains("\"version\":1"));
        let back = WaveletSynopsis::from_json(&json).unwrap();
        assert_eq!(syn, back);
    }

    #[test]
    fn json_envelope_rejects_truncation_skew_and_nan() {
        let syn = envelope_sample();
        let json = syn.to_json().unwrap();
        // Truncation at any point fails with a PdsError, never a panic.
        for cut in [0, 1, json.len() / 2, json.len() - 1] {
            assert!(WaveletSynopsis::from_json(&json[..cut]).is_err());
        }
        // Version skew.
        let skewed = json.replace("\"version\":1", "\"version\":9");
        assert!(WaveletSynopsis::from_json(&skewed).is_err());
        // Count mismatch.
        let miscounted = json.replace("\"num_coefficients\":4", "\"num_coefficients\":3");
        assert!(WaveletSynopsis::from_json(&miscounted).is_err());
        // NaN coefficients are refused by the writer.
        let mut nan = syn.clone();
        nan.retained[0].value = f64::NAN;
        assert!(nan.to_json().is_err());
        assert!(nan.validate().is_err());
    }

    #[test]
    fn binary_round_trip_is_exact_and_compact() {
        let syn = envelope_sample();
        let bytes = syn.to_binary().unwrap();
        let back = WaveletSynopsis::from_binary(&bytes).unwrap();
        assert_eq!(syn, back);
        // Delta-varint indices + raw doubles: far smaller than the JSON
        // envelope spelling out field names and decimal floats.
        assert!(bytes.len() * 3 < syn.to_json().unwrap().len());
    }

    #[test]
    fn binary_rejects_truncation_and_skew() {
        let syn = envelope_sample();
        let bytes = syn.to_binary().unwrap();
        for cut in 0..bytes.len() {
            assert!(WaveletSynopsis::from_binary(&bytes[..cut]).is_err());
        }
        let mut skewed = bytes.clone();
        skewed[4] = 42;
        assert!(WaveletSynopsis::from_binary(&skewed).is_err());
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(WaveletSynopsis::from_binary(&bad).is_err());
        let mut long = bytes.clone();
        long.push(7);
        assert!(WaveletSynopsis::from_binary(&long).is_err());
    }
}
