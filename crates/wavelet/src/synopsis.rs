//! The wavelet synopsis type: a sparse set of retained Haar coefficients.

use serde::{Deserialize, Serialize};

use pds_core::error::{PdsError, Result};

use crate::haar::{next_power_of_two, reconstruct_sparse_unnormalised};

/// A retained Haar coefficient: its index in the error tree and its value in
/// the **unnormalised** convention (so reconstruction is a plain signed sum
/// along root-to-leaf paths).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetainedCoefficient {
    /// Coefficient index (0 = overall average).
    pub index: usize,
    /// Retained (unnormalised) coefficient value.
    pub value: f64,
}

/// A `B`-term Haar wavelet synopsis over a domain of `n` items.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WaveletSynopsis {
    n: usize,
    retained: Vec<RetainedCoefficient>,
}

impl WaveletSynopsis {
    /// Builds a synopsis from retained coefficients, validating indices and
    /// rejecting duplicates.
    pub fn new(n: usize, retained: Vec<RetainedCoefficient>) -> Result<Self> {
        if n == 0 {
            return Err(PdsError::InvalidParameter {
                message: "the domain must be non-empty".into(),
            });
        }
        let padded = next_power_of_two(n);
        let mut seen = vec![false; padded];
        for c in &retained {
            if c.index >= padded {
                return Err(PdsError::InvalidParameter {
                    message: format!(
                        "coefficient index {} outside the padded domain [0, {padded})",
                        c.index
                    ),
                });
            }
            if seen[c.index] {
                return Err(PdsError::InvalidParameter {
                    message: format!("coefficient {} retained twice", c.index),
                });
            }
            seen[c.index] = true;
        }
        let mut retained = retained;
        retained.sort_by_key(|c| c.index);
        Ok(WaveletSynopsis { n, retained })
    }

    /// Domain size `n` (unpadded).
    pub fn n(&self) -> usize {
        self.n
    }

    /// The retained coefficients, sorted by index.
    pub fn retained(&self) -> &[RetainedCoefficient] {
        &self.retained
    }

    /// Number of retained coefficients (the synopsis size `B`).
    pub fn len(&self) -> usize {
        self.retained.len()
    }

    /// Whether no coefficient is retained (the all-zeros approximation).
    pub fn is_empty(&self) -> bool {
        self.retained.is_empty()
    }

    /// The retained coefficient indices.
    pub fn indices(&self) -> Vec<usize> {
        self.retained.iter().map(|c| c.index).collect()
    }

    /// Reconstructs the approximate frequency vector `ĝ` implied by the
    /// synopsis (non-retained coefficients are treated as zero).
    pub fn reconstruct(&self) -> Vec<f64> {
        let retained: Vec<(usize, f64)> =
            self.retained.iter().map(|c| (c.index, c.value)).collect();
        reconstruct_sparse_unnormalised(self.n, &retained)
    }

    /// The estimate `ĝ_i` for a single item.
    pub fn estimate(&self, i: usize) -> f64 {
        self.reconstruct()[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::haar::HaarTransform;

    #[test]
    fn retaining_every_coefficient_reconstructs_the_data() {
        let data = [2.0, 2.0, 0.0, 2.0, 3.0, 5.0, 4.0, 4.0];
        let t = HaarTransform::forward(&data);
        let retained: Vec<RetainedCoefficient> = t
            .unnormalised()
            .iter()
            .enumerate()
            .map(|(index, &value)| RetainedCoefficient { index, value })
            .collect();
        let syn = WaveletSynopsis::new(8, retained).unwrap();
        assert_eq!(syn.len(), 8);
        let back = syn.reconstruct();
        for (a, b) in data.iter().zip(&back) {
            assert!((a - b).abs() < 1e-12);
        }
        assert!((syn.estimate(5) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn empty_synopsis_reconstructs_zeros() {
        let syn = WaveletSynopsis::new(5, vec![]).unwrap();
        assert!(syn.is_empty());
        assert_eq!(syn.reconstruct(), vec![0.0; 5]);
    }

    #[test]
    fn invalid_synopses_are_rejected() {
        assert!(WaveletSynopsis::new(0, vec![]).is_err());
        assert!(WaveletSynopsis::new(
            4,
            vec![RetainedCoefficient {
                index: 9,
                value: 1.0
            }],
        )
        .is_err());
        assert!(WaveletSynopsis::new(
            4,
            vec![
                RetainedCoefficient {
                    index: 1,
                    value: 1.0
                },
                RetainedCoefficient {
                    index: 1,
                    value: 2.0
                },
            ],
        )
        .is_err());
    }

    #[test]
    fn retained_are_sorted_and_indices_exposed() {
        let syn = WaveletSynopsis::new(
            8,
            vec![
                RetainedCoefficient {
                    index: 5,
                    value: 1.0,
                },
                RetainedCoefficient {
                    index: 0,
                    value: 2.0,
                },
            ],
        )
        .unwrap();
        assert_eq!(syn.indices(), vec![0, 5]);
        assert_eq!(syn.n(), 8);
    }

    #[test]
    fn serde_round_trip() {
        let syn = WaveletSynopsis::new(
            8,
            vec![RetainedCoefficient {
                index: 0,
                value: 2.75,
            }],
        )
        .unwrap();
        let json = serde_json::to_string(&syn).unwrap();
        let back: WaveletSynopsis = serde_json::from_str(&json).unwrap();
        assert_eq!(syn, back);
    }
}
