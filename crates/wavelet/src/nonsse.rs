//! Restricted wavelet thresholding for non-SSE error metrics on probabilistic
//! data (Section 4.2 of the paper, Theorem 8).
//!
//! In the *restricted* problem the candidate coefficient values are fixed —
//! here, to the expected (unnormalised) Haar coefficients `μ_c` of the
//! relation — and the algorithm chooses *which* `B` of them to retain so as
//! to minimise a cumulative (`Σ_i E[err(g_i, ĝ_i)]`) or maximum
//! (`max_i E[err(g_i, ĝ_i)]`) expected error.
//!
//! The dynamic program runs over the Haar error tree exactly as in the
//! deterministic case; the only change is at the leaves, where the point
//! error is replaced by its expectation over the item's (induced) frequency
//! pdf, `E_W[err(g_i, v)] = Σ_j Pr[g_i = v_j] err(v_j, v)` — computable from
//! the induced value pdfs built once up front.  States are memoised on
//! `(tree node, budget, incoming reconstruction value)`; the incoming value
//! is determined by which ancestors were kept, so there are at most `2^depth`
//! of them per node and `O(n²)` overall.

use std::collections::HashMap;

use pds_core::error::{PdsError, Result};
use pds_core::metrics::ErrorMetric;
use pds_core::model::{ProbabilisticRelation, ValuePdfModel};

use crate::haar::{next_power_of_two, ErrorTree};
use crate::sse::ExpectedCoefficients;
use crate::synopsis::{RetainedCoefficient, WaveletSynopsis};

/// Result of the restricted non-SSE thresholding: the synopsis and its
/// optimal objective value.
#[derive(Debug, Clone)]
pub struct RestrictedWavelet {
    /// The synopsis retaining at most `B` expected-value coefficients.
    pub synopsis: WaveletSynopsis,
    /// The optimal expected error achieved (cumulative or maximum, per the
    /// metric).
    pub objective: f64,
}

/// Builds the optimal restricted `b`-term wavelet synopsis of `relation`
/// under `metric` (Theorem 8).  Coefficient values are fixed to the expected
/// Haar coefficients of the relation; the DP selects the subset to retain.
///
/// Intended for moderate domain sizes (the DP explores `O(n²B)` states); the
/// SSE metric has the dedicated linear-time [`build_sse_wavelet`]
/// (crate::sse::build_sse_wavelet) path instead.
pub fn build_restricted_wavelet(
    relation: &ProbabilisticRelation,
    metric: ErrorMetric,
    b: usize,
) -> Result<RestrictedWavelet> {
    let n = relation.n();
    if n == 0 {
        return Err(PdsError::InvalidParameter {
            message: "the domain must be non-empty".into(),
        });
    }
    let padded = next_power_of_two(n);
    let coeffs = ExpectedCoefficients::of(relation);
    let values = coeffs.unnormalised().to_vec();
    let pdfs = relation.induced_value_pdfs();
    let solver = Solver {
        tree: ErrorTree::new(padded),
        values,
        pdfs,
        metric,
        n,
        memo: std::cell::RefCell::new(HashMap::new()),
    };
    let budget = b.min(padded);
    let objective = solver.solve(0, budget, 0.0);
    let mut retained = Vec::new();
    solver.extract(0, budget, 0.0, &mut retained);
    let synopsis = WaveletSynopsis::new(
        n,
        retained
            .into_iter()
            .map(|index| RetainedCoefficient {
                index,
                value: solver.values[index],
            })
            .collect(),
    )?;
    Ok(RestrictedWavelet {
        synopsis,
        objective,
    })
}

struct Solver {
    tree: ErrorTree,
    values: Vec<f64>,
    pdfs: ValuePdfModel,
    metric: ErrorMetric,
    n: usize,
    memo: std::cell::RefCell<HashMap<(usize, usize, u64), f64>>,
}

impl Solver {
    fn combine(&self, a: f64, b: f64) -> f64 {
        if self.metric.is_cumulative() {
            a + b
        } else {
            a.max(b)
        }
    }

    fn leaf_error(&self, item: usize, incoming: f64) -> f64 {
        if item >= self.n {
            // Padding leaves approximate a certain zero frequency.
            return self.metric.point_error(0.0, incoming);
        }
        self.metric
            .expected_point_error(self.pdfs.item(item), incoming)
    }

    /// Minimum expected error over the support of tree node `node`, given
    /// `budget` coefficients may be retained in its subtree and the retained
    /// ancestors contribute `incoming` to every reconstruction in the
    /// support.
    fn solve(&self, node: usize, budget: usize, incoming: f64) -> f64 {
        if self.tree.is_leaf(node) {
            return self.leaf_error(self.tree.leaf_item(node), incoming);
        }
        let key = (node, budget, incoming.to_bits());
        if let Some(&v) = self.memo.borrow().get(&key) {
            return v;
        }
        let (left, right) = self.tree.children(node);
        let coefficient = self.values[node];
        let mut best = f64::INFINITY;
        if node == 0 {
            // The root average has a single child; keeping it adds +c_0 to
            // every reconstruction.
            best = best.min(self.solve(left, budget, incoming));
            if budget >= 1 {
                best = best.min(self.solve(left, budget - 1, incoming + coefficient));
            }
        } else {
            // Not retaining c_node: split the budget across the children.
            for b_left in 0..=budget {
                let l = self.solve(left, b_left, incoming);
                let r = self.solve(right, budget - b_left, incoming);
                best = best.min(self.combine(l, r));
            }
            // Retaining c_node at its fixed expected value.
            if budget >= 1 {
                for b_left in 0..=(budget - 1) {
                    let l = self.solve(left, b_left, incoming + coefficient);
                    let r = self.solve(right, budget - 1 - b_left, incoming - coefficient);
                    best = best.min(self.combine(l, r));
                }
            }
        }
        self.memo.borrow_mut().insert(key, best);
        best
    }

    /// Re-walks the memoised DP to recover which coefficients the optimal
    /// solution retained.
    fn extract(&self, node: usize, budget: usize, incoming: f64, out: &mut Vec<usize>) {
        if self.tree.is_leaf(node) {
            return;
        }
        let best = self.solve(node, budget, incoming);
        let (left, right) = self.tree.children(node);
        let coefficient = self.values[node];
        let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()));
        if node == 0 {
            if budget >= 1 && close(self.solve(left, budget - 1, incoming + coefficient), best) {
                out.push(0);
                self.extract(left, budget - 1, incoming + coefficient, out);
            } else {
                self.extract(left, budget, incoming, out);
            }
            return;
        }
        // Prefer a non-retaining split when it ties, to keep synopses small.
        for b_left in 0..=budget {
            let l = self.solve(left, b_left, incoming);
            let r = self.solve(right, budget - b_left, incoming);
            if close(self.combine(l, r), best) {
                self.extract(left, b_left, incoming, out);
                self.extract(right, budget - b_left, incoming, out);
                return;
            }
        }
        if budget >= 1 {
            for b_left in 0..=(budget - 1) {
                let l = self.solve(left, b_left, incoming + coefficient);
                let r = self.solve(right, budget - 1 - b_left, incoming - coefficient);
                if close(self.combine(l, r), best) {
                    out.push(node);
                    self.extract(left, b_left, incoming + coefficient, out);
                    self.extract(right, budget - 1 - b_left, incoming - coefficient, out);
                    return;
                }
            }
        }
        unreachable!("the optimal DP choice must be reconstructible");
    }
}

/// Evaluates the expected error of an arbitrary wavelet synopsis under the
/// given metric (cumulative or maximum), mirroring the histogram evaluator.
pub fn expected_wavelet_cost(
    relation: &ProbabilisticRelation,
    metric: ErrorMetric,
    synopsis: &WaveletSynopsis,
) -> f64 {
    let pdfs = relation.induced_value_pdfs();
    let estimates = synopsis.reconstruct();
    let per_item =
        (0..relation.n()).map(|i| metric.expected_point_error(pdfs.item(i), estimates[i]));
    metric.combine(per_item)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sse::build_sse_wavelet;
    use pds_core::generator::{mystiq_like, MystiqLikeConfig};
    use pds_core::model::ValuePdfModel;

    fn small_relation(n: usize, seed: u64) -> ProbabilisticRelation {
        mystiq_like(MystiqLikeConfig {
            n,
            avg_tuples_per_item: 2.0,
            skew: 0.7,
            seed,
        })
        .into()
    }

    /// Brute-force restricted optimum: try every subset of coefficients of
    /// size at most b, with values fixed to the expected coefficients.
    fn brute_force(relation: &ProbabilisticRelation, metric: ErrorMetric, b: usize) -> f64 {
        let coeffs = ExpectedCoefficients::of(relation);
        let values = coeffs.unnormalised();
        let padded = values.len();
        let mut best = f64::INFINITY;
        for mask in 0u32..(1 << padded) {
            if (mask.count_ones() as usize) > b {
                continue;
            }
            let retained: Vec<RetainedCoefficient> = (0..padded)
                .filter(|&i| mask & (1 << i) != 0)
                .map(|index| RetainedCoefficient {
                    index,
                    value: values[index],
                })
                .collect();
            let syn = WaveletSynopsis::new(relation.n(), retained).unwrap();
            best = best.min(expected_wavelet_cost(relation, metric, &syn));
        }
        best
    }

    #[test]
    fn restricted_dp_matches_brute_force_subset_enumeration() {
        for seed in [1, 2] {
            let rel = small_relation(8, seed);
            for metric in [
                ErrorMetric::Sae,
                ErrorMetric::Sare { c: 1.0 },
                ErrorMetric::Mae,
            ] {
                for b in [1, 2, 3] {
                    let dp = build_restricted_wavelet(&rel, metric, b).unwrap();
                    let brute = brute_force(&rel, metric, b);
                    assert!(
                        (dp.objective - brute).abs() < 1e-9,
                        "seed {seed} {metric} b={b}: {} vs {brute}",
                        dp.objective
                    );
                    // The reported objective matches an independent evaluation
                    // of the synopsis the DP returns.
                    let eval = expected_wavelet_cost(&rel, metric, &dp.synopsis);
                    assert!((dp.objective - eval).abs() < 1e-9);
                    assert!(dp.synopsis.len() <= b);
                }
            }
        }
    }

    #[test]
    fn budget_zero_returns_the_all_zero_synopsis() {
        let rel = small_relation(8, 3);
        let metric = ErrorMetric::Sae;
        let dp = build_restricted_wavelet(&rel, metric, 0).unwrap();
        assert!(dp.synopsis.is_empty());
        let pdfs = rel.induced_value_pdfs();
        let expected: f64 = (0..8)
            .map(|i| metric.expected_point_error(pdfs.item(i), 0.0))
            .sum();
        assert!((dp.objective - expected).abs() < 1e-9);
    }

    #[test]
    fn objective_is_monotone_in_the_budget() {
        let rel = small_relation(16, 5);
        for metric in [
            ErrorMetric::Sae,
            ErrorMetric::Mae,
            ErrorMetric::Sare { c: 0.5 },
        ] {
            let mut prev = f64::INFINITY;
            for b in 0..=6 {
                let dp = build_restricted_wavelet(&rel, metric, b).unwrap();
                assert!(dp.objective <= prev + 1e-9, "{metric} b={b}");
                prev = dp.objective;
            }
        }
    }

    #[test]
    fn deterministic_data_full_budget_reaches_zero_error() {
        let data = [2.0, 2.0, 0.0, 2.0, 3.0, 5.0, 4.0, 4.0];
        let rel: ProbabilisticRelation = ValuePdfModel::deterministic(&data).into();
        for metric in [ErrorMetric::Sae, ErrorMetric::Mae] {
            let dp = build_restricted_wavelet(&rel, metric, 8).unwrap();
            assert!(dp.objective < 1e-9, "{metric}");
        }
    }

    #[test]
    fn restricted_sse_agrees_with_greedy_thresholding_on_deterministic_data() {
        // On certain data the restricted DP under SSE must match the classic
        // greedy normalised-coefficient thresholding (both are optimal).
        let data = [7.0, 1.0, 0.0, 2.0, 3.0, 9.0, 4.0, 4.0];
        let rel: ProbabilisticRelation = ValuePdfModel::deterministic(&data).into();
        for b in [1, 2, 3, 4] {
            let dp = build_restricted_wavelet(&rel, ErrorMetric::Sse, b).unwrap();
            let greedy = build_sse_wavelet(&rel, b).unwrap();
            let dp_cost = expected_wavelet_cost(&rel, ErrorMetric::Sse, &dp.synopsis);
            let greedy_cost = expected_wavelet_cost(&rel, ErrorMetric::Sse, &greedy);
            assert!(
                (dp_cost - greedy_cost).abs() < 1e-9,
                "b={b}: {dp_cost} vs {greedy_cost}"
            );
        }
    }

    #[test]
    fn non_power_of_two_domains_are_padded() {
        let rel = small_relation(6, 7);
        let dp = build_restricted_wavelet(&rel, ErrorMetric::Sae, 3).unwrap();
        assert_eq!(dp.synopsis.n(), 6);
        assert!(dp.synopsis.len() <= 3);
        assert!(dp.objective.is_finite());
    }
}
