//! SSE-optimal wavelet synopses on probabilistic data (Section 4.1 of the
//! paper, Theorem 7).
//!
//! Because the Haar transform is linear, the expected value of every wavelet
//! coefficient is the transform of the expected frequencies,
//! `μ_c = H(E[g])`.  By Parseval and linearity of expectation the expected
//! SSE of a synopsis that retains index set `I` with values `ĉ_i` is
//! `Σ_{i∈I} E[(c_i − ĉ_i)²] + Σ_{i∉I} E[c_i²]`; retaining a coefficient is
//! best done at its expected value (benefit `μ_{c_i}²`), so the optimal
//! strategy is simply to keep the `B` coefficients with the largest absolute
//! expected *normalised* value — a linear-time computation.

use pds_core::error::Result;
use pds_core::model::ProbabilisticRelation;
use pds_core::moments::item_moments;

use crate::haar::HaarTransform;
use crate::synopsis::{RetainedCoefficient, WaveletSynopsis};

/// The expected Haar coefficients of a probabilistic relation, in both
/// conventions, computed from the expected frequencies.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpectedCoefficients {
    transform: HaarTransform,
}

impl ExpectedCoefficients {
    /// Computes `μ_c = H(E[g])` for the relation.
    pub fn of(relation: &ProbabilisticRelation) -> Self {
        let means = relation.expected_frequencies();
        ExpectedCoefficients {
            transform: HaarTransform::forward(&means),
        }
    }

    /// Expected normalised coefficients (used for SSE thresholding).
    pub fn normalised(&self) -> &[f64] {
        self.transform.normalised()
    }

    /// Expected unnormalised coefficients (used for reconstruction and the
    /// non-SSE error-tree DP).
    pub fn unnormalised(&self) -> &[f64] {
        self.transform.unnormalised()
    }

    /// The underlying transform of the expected frequencies.
    pub fn transform(&self) -> &HaarTransform {
        &self.transform
    }

    /// The indices of the `b` coefficients with the largest absolute expected
    /// normalised value (ties broken towards smaller indices for
    /// determinism).
    pub fn top_indices(&self, b: usize) -> Vec<usize> {
        top_indices_by_magnitude(self.normalised(), b)
    }
}

/// Indices of the `b` largest-magnitude entries of `values`, deterministic
/// under ties.
pub fn top_indices_by_magnitude(values: &[f64], b: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &bi| {
        values[bi]
            .abs()
            .partial_cmp(&values[a].abs())
            .expect("finite coefficients")
            .then(a.cmp(&bi))
    });
    idx.truncate(b.min(values.len()));
    idx.sort_unstable();
    idx
}

/// Builds the expected-SSE-optimal `b`-term wavelet synopsis of `relation`
/// (Theorem 7): the `b` largest expected normalised coefficients, retained at
/// their expected (unnormalised) values.
pub fn build_sse_wavelet(relation: &ProbabilisticRelation, b: usize) -> Result<WaveletSynopsis> {
    let coeffs = ExpectedCoefficients::of(relation);
    let indices = coeffs.top_indices(b);
    let unnorm = coeffs.unnormalised();
    let retained = indices
        .into_iter()
        .map(|index| RetainedCoefficient {
            index,
            value: unnorm[index],
        })
        .collect();
    WaveletSynopsis::new(relation.n(), retained)
}

/// The exact expected SSE of an arbitrary wavelet synopsis over the relation,
/// evaluated in data space: `E_W[Σ_i (g_i − ĝ_i)²] = Σ_i (E[g_i²] − 2 ĝ_i
/// E[g_i] + ĝ_i²)`, which only needs per-item moments and therefore holds for
/// every uncertainty model.
pub fn expected_sse(relation: &ProbabilisticRelation, synopsis: &WaveletSynopsis) -> f64 {
    let moments = item_moments(relation);
    let estimates = synopsis.reconstruct();
    moments
        .iter()
        .zip(&estimates)
        .map(|(m, &g_hat)| m.second_moment - 2.0 * g_hat * m.mean + g_hat * g_hat)
        .sum()
}

/// The retained-energy error percentage used in Figure 4 of the paper: the
/// squared expected normalised coefficients *not* captured by `indices`, as a
/// percentage of the total `Σ_i μ_{c_i}²`.
pub fn selection_error_percentage(normalised_mu: &[f64], indices: &[usize]) -> f64 {
    let total: f64 = normalised_mu.iter().map(|c| c * c).sum();
    if total <= 0.0 {
        return 0.0;
    }
    let kept: f64 = indices
        .iter()
        .map(|&i| normalised_mu[i] * normalised_mu[i])
        .sum();
    (100.0 * (total - kept) / total).clamp(0.0, 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pds_core::generator::{mystiq_like, test_workloads, MystiqLikeConfig};
    use pds_core::model::ValuePdfModel;

    #[test]
    fn expected_coefficients_are_the_transform_of_expected_frequencies() {
        for w in test_workloads(32, 2) {
            let coeffs = ExpectedCoefficients::of(&w.relation);
            let manual = HaarTransform::forward(&w.relation.expected_frequencies());
            assert_eq!(coeffs.normalised(), manual.normalised());
            assert_eq!(coeffs.unnormalised(), manual.unnormalised());
        }
    }

    #[test]
    fn top_indices_selects_largest_magnitudes() {
        let values = [0.5, -3.0, 2.0, 0.0, -2.5];
        assert_eq!(top_indices_by_magnitude(&values, 2), vec![1, 4]);
        assert_eq!(top_indices_by_magnitude(&values, 0), Vec::<usize>::new());
        assert_eq!(top_indices_by_magnitude(&values, 10).len(), 5);
    }

    #[test]
    fn greedy_selection_is_sse_optimal_among_expected_value_synopses() {
        // For every subset of the same size built from expected coefficient
        // values, the greedy top-|μ| selection has the smallest expected SSE.
        let rel: ProbabilisticRelation = mystiq_like(MystiqLikeConfig {
            n: 8,
            avg_tuples_per_item: 2.0,
            skew: 0.7,
            seed: 4,
        })
        .into();
        let coeffs = ExpectedCoefficients::of(&rel);
        let unnorm = coeffs.unnormalised();
        let b = 3;
        let greedy = build_sse_wavelet(&rel, b).unwrap();
        let greedy_sse = expected_sse(&rel, &greedy);
        // Enumerate all 3-subsets of the 8 coefficient indices.
        for i in 0..8 {
            for j in (i + 1)..8 {
                for k in (j + 1)..8 {
                    let syn = WaveletSynopsis::new(
                        8,
                        vec![i, j, k]
                            .into_iter()
                            .map(|index| RetainedCoefficient {
                                index,
                                value: unnorm[index],
                            })
                            .collect(),
                    )
                    .unwrap();
                    assert!(
                        expected_sse(&rel, &syn) >= greedy_sse - 1e-9,
                        "subset {{{i},{j},{k}}} beats the greedy selection"
                    );
                }
            }
        }
    }

    #[test]
    fn retaining_all_coefficients_leaves_only_the_intrinsic_variance() {
        // With every coefficient kept the reconstruction equals E[g], so the
        // expected SSE is exactly Σ Var[g_i] — the irreducible error of any
        // fixed synopsis.
        let rel: ProbabilisticRelation = mystiq_like(MystiqLikeConfig {
            n: 16,
            avg_tuples_per_item: 2.0,
            skew: 0.7,
            seed: 9,
        })
        .into();
        let syn = build_sse_wavelet(&rel, 16).unwrap();
        let total_var: f64 = item_moments(&rel).iter().map(|m| m.variance).sum();
        assert!((expected_sse(&rel, &syn) - total_var).abs() < 1e-9);
    }

    #[test]
    fn deterministic_data_reduces_to_classic_wavelet_thresholding() {
        let data = [2.0, 2.0, 0.0, 2.0, 3.0, 5.0, 4.0, 4.0];
        let rel: ProbabilisticRelation = ValuePdfModel::deterministic(&data).into();
        let syn = build_sse_wavelet(&rel, 8).unwrap();
        // Retaining everything reconstructs the data exactly: zero SSE.
        assert!(expected_sse(&rel, &syn) < 1e-18);
        // Retaining B terms: SSE equals the energy of the dropped normalised
        // coefficients (Parseval).
        let t = HaarTransform::forward(&data);
        for b in 0..8 {
            let syn = build_sse_wavelet(&rel, b).unwrap();
            let kept = syn.indices();
            let dropped_energy: f64 = (0..8)
                .filter(|i| !kept.contains(i))
                .map(|i| t.normalised()[i] * t.normalised()[i])
                .sum();
            assert!(
                (expected_sse(&rel, &syn) - dropped_energy).abs() < 1e-9,
                "b={b}"
            );
        }
    }

    #[test]
    fn error_percentage_is_monotone_in_the_budget() {
        let rel: ProbabilisticRelation = mystiq_like(MystiqLikeConfig {
            n: 64,
            avg_tuples_per_item: 3.0,
            skew: 0.9,
            seed: 12,
        })
        .into();
        let coeffs = ExpectedCoefficients::of(&rel);
        let mut prev = 100.0;
        for b in 0..=64 {
            let pct = selection_error_percentage(coeffs.normalised(), &coeffs.top_indices(b));
            assert!(pct <= prev + 1e-9);
            prev = pct;
        }
        assert!(prev.abs() < 1e-9, "keeping everything leaves zero error");
        assert_eq!(selection_error_percentage(coeffs.normalised(), &[]), 100.0);
    }

    #[test]
    fn expected_sse_decreases_with_budget_for_greedy_selection() {
        let rel: ProbabilisticRelation = mystiq_like(MystiqLikeConfig {
            n: 32,
            avg_tuples_per_item: 2.5,
            skew: 0.8,
            seed: 3,
        })
        .into();
        let mut prev = f64::INFINITY;
        for b in 0..=32 {
            let syn = build_sse_wavelet(&rel, b).unwrap();
            let sse = expected_sse(&rel, &syn);
            assert!(sse <= prev + 1e-9, "b={b}");
            prev = sse;
        }
    }
}
