//! The Haar discrete wavelet transform and its error-tree structure
//! (Section 2.2 of the paper).
//!
//! Two conventions are provided:
//!
//! * the **unnormalised** transform used by the error-tree dynamic programs
//!   (`c_0` is the overall average, every detail coefficient is half the
//!   difference of its children's averages, and a data value is reconstructed
//!   by adding/subtracting the coefficients on its root-to-leaf path);
//! * the **orthonormal** transform (each pairwise average/difference is
//!   scaled by `1/√2`) under which the sum of squared coefficients equals the
//!   sum of squared data values (Parseval), so greedy thresholding by
//!   absolute normalised value is SSE-optimal.
//!
//! Inputs whose length is not a power of two are implicitly padded with
//! zeros, as is customary for Haar synopses.

use serde::{Deserialize, Serialize};

/// The Haar transform of a data vector, carrying both coefficient
/// conventions and the padded length.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HaarTransform {
    original_len: usize,
    padded_len: usize,
    normalised: Vec<f64>,
    unnormalised: Vec<f64>,
}

/// Rounds `n` up to the next power of two (minimum 1).
pub fn next_power_of_two(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

impl HaarTransform {
    /// Computes the Haar transform of `data` (padding with zeros to the next
    /// power of two).
    pub fn forward(data: &[f64]) -> Self {
        let original_len = data.len();
        let padded_len = next_power_of_two(original_len);
        let mut padded = data.to_vec();
        padded.resize(padded_len, 0.0);

        let normalised = transform(&padded, 1.0 / std::f64::consts::SQRT_2);
        let unnormalised = transform(&padded, 0.5);

        HaarTransform {
            original_len,
            padded_len,
            normalised,
            unnormalised,
        }
    }

    /// Length of the original (unpadded) input.
    pub fn original_len(&self) -> usize {
        self.original_len
    }

    /// Padded (power-of-two) length; the number of coefficients.
    pub fn padded_len(&self) -> usize {
        self.padded_len
    }

    /// The orthonormal coefficients (Parseval: `Σ c_i² = Σ g_i²`).
    pub fn normalised(&self) -> &[f64] {
        &self.normalised
    }

    /// The unnormalised error-tree coefficients (`c_0` = overall average).
    pub fn unnormalised(&self) -> &[f64] {
        &self.unnormalised
    }

    /// Reconstructs the full data vector from the unnormalised coefficients,
    /// truncated back to the original length.
    pub fn reconstruct(&self) -> Vec<f64> {
        let mut data = reconstruct_unnormalised(&self.unnormalised);
        data.truncate(self.original_len);
        data
    }
}

/// One level-by-level Haar decomposition with the given detail scale
/// (`1/√2` for the orthonormal transform, `1/2` for the unnormalised one).
fn transform(padded: &[f64], scale: f64) -> Vec<f64> {
    let n = padded.len();
    let mut coeffs = vec![0.0; n];
    let mut current = padded.to_vec();
    let mut len = n;
    while len > 1 {
        let half = len / 2;
        let mut next = vec![0.0; half];
        for i in 0..half {
            let a = current[2 * i];
            let b = current[2 * i + 1];
            next[i] = (a + b) * scale;
            // Detail coefficients of this level live at indices half..len of
            // the coefficient array (standard Haar layout: index h + i holds
            // the detail whose support is the 2^(log n − level) sized block i).
            coeffs[half + i] = (a - b) * scale;
        }
        current = next;
        len = half;
    }
    coeffs[0] = current[0];
    coeffs
}

/// Inverse of the unnormalised transform.
pub fn reconstruct_unnormalised(coeffs: &[f64]) -> Vec<f64> {
    let n = coeffs.len();
    assert!(
        n.is_power_of_two(),
        "coefficient vectors are power-of-two sized"
    );
    let mut current = vec![coeffs[0]];
    let mut len = 1;
    while len < n {
        let mut next = vec![0.0; len * 2];
        for i in 0..len {
            let avg = current[i];
            let detail = coeffs[len + i];
            next[2 * i] = avg + detail;
            next[2 * i + 1] = avg - detail;
        }
        current = next;
        len *= 2;
    }
    current
}

/// Inverse of the orthonormal transform.
pub fn reconstruct_normalised(coeffs: &[f64]) -> Vec<f64> {
    let n = coeffs.len();
    assert!(
        n.is_power_of_two(),
        "coefficient vectors are power-of-two sized"
    );
    let s = std::f64::consts::SQRT_2;
    let mut current = vec![coeffs[0]];
    let mut len = 1;
    while len < n {
        let mut next = vec![0.0; len * 2];
        for i in 0..len {
            let avg = current[i];
            let detail = coeffs[len + i];
            next[2 * i] = (avg + detail) / s;
            next[2 * i + 1] = (avg - detail) / s;
        }
        current = next;
        len *= 2;
    }
    current
}

/// Reconstructs data from a sparse set of unnormalised coefficients
/// (`(index, value)` pairs); all other coefficients are zero.
pub fn reconstruct_sparse_unnormalised(n: usize, retained: &[(usize, f64)]) -> Vec<f64> {
    let padded = next_power_of_two(n);
    let mut coeffs = vec![0.0; padded];
    for &(i, v) in retained {
        coeffs[i] = v;
    }
    let mut data = reconstruct_unnormalised(&coeffs);
    data.truncate(n);
    data
}

/// Error-tree navigation helpers for a coefficient vector of (power-of-two)
/// length `n`.
///
/// Coefficient `0` is the overall average whose only child is coefficient
/// `1`; coefficient `i ≥ 1` has children `2i` and `2i + 1`, where indices
/// `≥ n` denote data leaves (`n + j` is item `j`).  The *support* of a
/// coefficient is the dyadic range of items it participates in
/// reconstructing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ErrorTree {
    n: usize,
}

impl ErrorTree {
    /// Builds the navigation helper for `n` coefficients (`n` a power of
    /// two).
    pub fn new(n: usize) -> Self {
        assert!(
            n.is_power_of_two(),
            "the error tree is defined for power-of-two n"
        );
        ErrorTree { n }
    }

    /// Number of coefficients / leaves.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Whether tree index `idx` denotes a data leaf.
    pub fn is_leaf(&self, idx: usize) -> bool {
        idx >= self.n
    }

    /// The data item of a leaf index.
    pub fn leaf_item(&self, idx: usize) -> usize {
        debug_assert!(self.is_leaf(idx));
        idx - self.n
    }

    /// The children of coefficient `idx` (`idx < n`), as tree indices.
    pub fn children(&self, idx: usize) -> (usize, usize) {
        if idx == 0 {
            // The root average has a single child (the top detail
            // coefficient), or the lone data leaf when n == 1.
            if self.n == 1 {
                (self.n, self.n)
            } else {
                (1, 1)
            }
        } else {
            (2 * idx, 2 * idx + 1)
        }
    }

    /// The inclusive item range (support) reconstructed using coefficient
    /// `idx`.
    pub fn support(&self, idx: usize) -> (usize, usize) {
        if idx == 0 {
            return (0, self.n - 1);
        }
        // Coefficient idx sits at level floor(log2 idx); its support has size
        // n / 2^level and is the idx-th dyadic block of that size.
        let level = usize::BITS as usize - 1 - idx.leading_zeros() as usize;
        let size = self.n >> level;
        let offset = (idx - (1 << level)) * size;
        (offset, offset + size - 1)
    }

    /// The signed contribution (`+1`/`-1`) of coefficient `idx` to the
    /// reconstruction of item `item`, or `0` if the item is outside the
    /// coefficient's support.
    pub fn sign(&self, idx: usize, item: usize) -> f64 {
        let (lo, hi) = self.support(idx);
        if item < lo || item > hi {
            return 0.0;
        }
        if idx == 0 {
            return 1.0;
        }
        let mid = lo + (hi - lo) / 2;
        if item <= mid {
            1.0
        } else {
            -1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The running example of Figure 1 in the paper:
    /// A = [2, 2, 0, 2, 3, 5, 4, 4].
    const PAPER_DATA: [f64; 8] = [2.0, 2.0, 0.0, 2.0, 3.0, 5.0, 4.0, 4.0];

    #[test]
    fn unnormalised_coefficients_match_figure_1() {
        let t = HaarTransform::forward(&PAPER_DATA);
        let c = t.unnormalised();
        // Figure 1: c0 = 11/4, c1 = -5/4, c2 = 1/2, c3 = 0, c4 = 0, c5 = -1,
        // c6 = -1, c7 = 0.
        let expected = [11.0 / 4.0, -5.0 / 4.0, 0.5, 0.0, 0.0, -1.0, -1.0, 0.0];
        for (i, &e) in expected.iter().enumerate() {
            assert!((c[i] - e).abs() < 1e-12, "c{i}: {} vs {e}", c[i]);
        }
    }

    #[test]
    fn parseval_holds_for_the_normalised_transform() {
        let t = HaarTransform::forward(&PAPER_DATA);
        let data_energy: f64 = PAPER_DATA.iter().map(|x| x * x).sum();
        let coeff_energy: f64 = t.normalised().iter().map(|x| x * x).sum();
        assert!((data_energy - coeff_energy).abs() < 1e-9);
    }

    #[test]
    fn round_trips_recover_the_data() {
        let t = HaarTransform::forward(&PAPER_DATA);
        let back = t.reconstruct();
        for (a, b) in PAPER_DATA.iter().zip(&back) {
            assert!((a - b).abs() < 1e-12);
        }
        let back_norm = reconstruct_normalised(t.normalised());
        for (a, b) in PAPER_DATA.iter().zip(&back_norm) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn non_power_of_two_inputs_are_zero_padded() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0];
        let t = HaarTransform::forward(&data);
        assert_eq!(t.original_len(), 5);
        assert_eq!(t.padded_len(), 8);
        let back = t.reconstruct();
        assert_eq!(back.len(), 5);
        for (a, b) in data.iter().zip(&back) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn sparse_reconstruction_matches_dense_with_zeroed_coefficients() {
        let t = HaarTransform::forward(&PAPER_DATA);
        let c = t.unnormalised();
        // Keep only the three largest-magnitude unnormalised coefficients.
        let mut idx: Vec<usize> = (0..8).collect();
        idx.sort_by(|&a, &b| c[b].abs().partial_cmp(&c[a].abs()).unwrap());
        let retained: Vec<(usize, f64)> = idx[..3].iter().map(|&i| (i, c[i])).collect();
        let sparse = reconstruct_sparse_unnormalised(8, &retained);
        let mut dense_coeffs = vec![0.0; 8];
        for &(i, v) in &retained {
            dense_coeffs[i] = v;
        }
        let dense = reconstruct_unnormalised(&dense_coeffs);
        assert_eq!(sparse, dense);
    }

    #[test]
    fn error_tree_supports_match_figure_1() {
        let tree = ErrorTree::new(8);
        assert_eq!(tree.support(0), (0, 7));
        assert_eq!(tree.support(1), (0, 7));
        assert_eq!(tree.support(2), (0, 3));
        assert_eq!(tree.support(3), (4, 7));
        assert_eq!(tree.support(5), (2, 3));
        assert_eq!(tree.support(7), (6, 7));
        assert_eq!(tree.children(0), (1, 1));
        assert_eq!(tree.children(1), (2, 3));
        assert_eq!(tree.children(4), (8, 9));
        assert!(tree.is_leaf(8));
        assert_eq!(tree.leaf_item(11), 3);
    }

    #[test]
    fn path_reconstruction_matches_the_inverse_transform() {
        // Reconstructing every item by summing the signed coefficients on its
        // root-to-leaf path must agree with the inverse transform.
        let t = HaarTransform::forward(&PAPER_DATA);
        let c = t.unnormalised();
        let tree = ErrorTree::new(8);
        for (item, &expected) in PAPER_DATA.iter().enumerate() {
            let mut value = 0.0;
            for (i, &coef) in c.iter().enumerate() {
                value += tree.sign(i, item) * coef;
            }
            assert!((value - expected).abs() < 1e-12, "item {item}: {value}");
        }
    }

    #[test]
    fn signs_are_zero_outside_the_support() {
        let tree = ErrorTree::new(8);
        assert_eq!(tree.sign(5, 0), 0.0);
        assert_eq!(tree.sign(5, 2), 1.0);
        assert_eq!(tree.sign(5, 3), -1.0);
        assert_eq!(tree.sign(0, 7), 1.0);
    }

    #[test]
    fn single_item_transform() {
        let t = HaarTransform::forward(&[5.0]);
        assert_eq!(t.padded_len(), 1);
        assert_eq!(t.unnormalised(), &[5.0]);
        assert_eq!(t.reconstruct(), vec![5.0]);
        let tree = ErrorTree::new(1);
        assert_eq!(tree.children(0), (1, 1));
        assert!(tree.is_leaf(1));
    }
}
