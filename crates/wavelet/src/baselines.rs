//! The sampled-world wavelet baseline of the paper's experiments
//! (Section 5.2): sample one possible world, compute its Haar transform, and
//! keep the indices of its `B` largest normalised coefficients.  The
//! selection quality is then measured against the expected coefficients of
//! the full probabilistic relation, exactly as in Figure 4.

use rand::Rng;

use pds_core::error::Result;
use pds_core::model::ProbabilisticRelation;
use pds_core::worlds::sample_world;

use crate::haar::HaarTransform;
use crate::sse::{top_indices_by_magnitude, ExpectedCoefficients};
use crate::synopsis::{RetainedCoefficient, WaveletSynopsis};

/// Coefficient indices chosen by thresholding one sampled possible world.
pub fn sampled_world_selection<R: Rng + ?Sized>(
    relation: &ProbabilisticRelation,
    b: usize,
    rng: &mut R,
) -> Vec<usize> {
    let world = sample_world(relation, rng);
    let transform = HaarTransform::forward(&world);
    top_indices_by_magnitude(transform.normalised(), b)
}

/// The sampled-world baseline synopsis: indices chosen from a sampled world,
/// values taken from that same world's (unnormalised) coefficients — i.e.
/// exactly the synopsis a deterministic system would build for the sample.
pub fn sampled_world_wavelet<R: Rng + ?Sized>(
    relation: &ProbabilisticRelation,
    b: usize,
    rng: &mut R,
) -> Result<WaveletSynopsis> {
    let world = sample_world(relation, rng);
    let transform = HaarTransform::forward(&world);
    let indices = top_indices_by_magnitude(transform.normalised(), b);
    let unnorm = transform.unnormalised();
    WaveletSynopsis::new(
        relation.n(),
        indices
            .into_iter()
            .map(|index| RetainedCoefficient {
                index,
                value: unnorm[index],
            })
            .collect(),
    )
}

/// The expectation-based synopsis restricted to an arbitrary index selection:
/// retains the *expected* coefficient values at `indices`.  Used to score
/// index selections (optimal or sampled) on a common footing in Figure 4.
pub fn synopsis_from_selection(
    relation: &ProbabilisticRelation,
    indices: &[usize],
) -> Result<WaveletSynopsis> {
    let coeffs = ExpectedCoefficients::of(relation);
    let unnorm = coeffs.unnormalised();
    WaveletSynopsis::new(
        relation.n(),
        indices
            .iter()
            .map(|&index| RetainedCoefficient {
                index,
                value: unnorm[index],
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sse::{build_sse_wavelet, expected_sse, selection_error_percentage};
    use pds_core::generator::{mystiq_like, MystiqLikeConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn relation(n: usize) -> ProbabilisticRelation {
        mystiq_like(MystiqLikeConfig {
            n,
            avg_tuples_per_item: 3.0,
            skew: 0.9,
            seed: 23,
        })
        .into()
    }

    #[test]
    fn sampled_selection_has_the_requested_size() {
        let rel = relation(32);
        let mut rng = StdRng::seed_from_u64(1);
        let sel = sampled_world_selection(&rel, 5, &mut rng);
        assert_eq!(sel.len(), 5);
        assert!(sel.iter().all(|&i| i < 32));
        // Deterministic per seed.
        let again = sampled_world_selection(&rel, 5, &mut StdRng::seed_from_u64(1));
        assert_eq!(sel, again);
    }

    #[test]
    fn optimal_selection_never_loses_to_the_sampled_world_selection() {
        // The Figure 4 claim: measured on the expected coefficients, the
        // probabilistic (expected-coefficient) selection retains at least as
        // much energy as the sampled-world selection.
        let rel = relation(64);
        let coeffs = ExpectedCoefficients::of(&rel);
        let mut rng = StdRng::seed_from_u64(5);
        for b in [1, 4, 8, 16, 32] {
            let optimal = coeffs.top_indices(b);
            let sampled = sampled_world_selection(&rel, b, &mut rng);
            let opt_err = selection_error_percentage(coeffs.normalised(), &optimal);
            let smp_err = selection_error_percentage(coeffs.normalised(), &sampled);
            assert!(
                opt_err <= smp_err + 1e-9,
                "b={b}: optimal {opt_err}% vs sampled {smp_err}%"
            );
        }
    }

    #[test]
    fn optimal_synopsis_never_loses_in_expected_sse_either() {
        let rel = relation(32);
        let mut rng = StdRng::seed_from_u64(9);
        for b in [2, 8, 16] {
            let optimal = build_sse_wavelet(&rel, b).unwrap();
            let sampled = sampled_world_wavelet(&rel, b, &mut rng).unwrap();
            assert!(expected_sse(&rel, &optimal) <= expected_sse(&rel, &sampled) + 1e-9);
        }
    }

    #[test]
    fn synopsis_from_selection_uses_expected_values() {
        let rel = relation(16);
        let coeffs = ExpectedCoefficients::of(&rel);
        let syn = synopsis_from_selection(&rel, &[0, 3, 5]).unwrap();
        assert_eq!(syn.indices(), vec![0, 3, 5]);
        for c in syn.retained() {
            assert!((c.value - coeffs.unnormalised()[c.index]).abs() < 1e-12);
        }
    }
}
