//! # pds-wavelet
//!
//! **Haar wavelet synopses on probabilistic data**, reproducing Section 4 of
//! *Cormode & Garofalakis, "Histograms and Wavelets on Probabilistic Data",
//! ICDE 2009*.
//!
//! * [`haar`] — the Haar DWT (orthonormal and unnormalised conventions) and
//!   the coefficient error tree of Figure 1;
//! * [`sse`] — the expected-SSE-optimal synopsis (Theorem 7): keep the `B`
//!   coefficients with the largest absolute expected normalised value, i.e.
//!   the transform of the expected frequencies, in linear time;
//! * [`nonsse`] — the restricted error-tree dynamic program for non-SSE
//!   metrics (Theorem 8), with expected point errors at the leaves;
//! * [`baselines`] — the sampled-world heuristic of the experimental study;
//! * [`synopsis`] — the sparse coefficient synopsis type and reconstruction.
//!
//! ## Example
//!
//! ```
//! use pds_core::generator::{mystiq_like, MystiqLikeConfig};
//! use pds_core::model::ProbabilisticRelation;
//! use pds_wavelet::{build_sse_wavelet, sse::expected_sse};
//!
//! let relation: ProbabilisticRelation = mystiq_like(MystiqLikeConfig {
//!     n: 128,
//!     avg_tuples_per_item: 3.0,
//!     skew: 0.8,
//!     seed: 1,
//! })
//! .into();
//!
//! let synopsis = build_sse_wavelet(&relation, 16).unwrap();
//! assert!(synopsis.len() <= 16);
//! assert!(expected_sse(&relation, &synopsis).is_finite());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod baselines;
pub mod haar;
pub mod nonsse;
pub mod sse;
pub mod synopsis;

pub use baselines::{sampled_world_selection, sampled_world_wavelet, synopsis_from_selection};
pub use haar::{ErrorTree, HaarTransform};
pub use nonsse::{build_restricted_wavelet, expected_wavelet_cost, RestrictedWavelet};
pub use sse::{build_sse_wavelet, selection_error_percentage, ExpectedCoefficients};
pub use synopsis::{RetainedCoefficient, WaveletSynopsis};

#[cfg(test)]
mod tests {
    use super::*;
    use pds_core::generator::test_workloads;
    use pds_core::metrics::ErrorMetric;

    #[test]
    fn sse_and_restricted_builders_work_for_every_model() {
        for w in test_workloads(16, 8) {
            let sse = build_sse_wavelet(&w.relation, 4).unwrap();
            assert!(sse.len() <= 4, "{}", w.name);
            let restricted = build_restricted_wavelet(&w.relation, ErrorMetric::Sae, 4).unwrap();
            assert!(restricted.synopsis.len() <= 4, "{}", w.name);
            assert!(restricted.objective.is_finite());
        }
    }
}
