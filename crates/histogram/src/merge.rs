//! Partition-merge dynamic program: recombining per-partition histogram
//! synopses into one global `B`-bucket histogram.
//!
//! A sharded deployment builds a histogram per item-range partition (and,
//! with LSM-style ingest, several per partition over time).  Concatenating
//! those synopses yields a **piecewise-constant summary** of the global
//! expected-frequency vector: one piece per source bucket, carrying its
//! width and representative.  The merge problem is then a weighted V-optimal
//! histogram over the pieces — the candidate cut points are exactly the
//! partition/bucket boundaries, so the DP runs over `k = Σ Bᵢ` pieces
//! instead of `n` items, through the same [`DpTables`]/batched
//! [`BucketCostOracle::costs_ending_at`] machinery as the item-level build.
//!
//! **Cost contract.**  Piece costs are the *merge-stage* SSE: the
//! squared-error mass of replacing each piece value by the merged bucket's
//! representative, weighted by piece width.  The recorded bucket costs (and
//! the merged histogram's `total_cost`) therefore measure the additional
//! error introduced by re-bucketing the summary, **not** the end-to-end
//! error against the original probabilistic data.  The end-to-end error is
//! bounded by the per-partition synopsis error plus this merge-stage error
//! (both are SSE against nested refinements), which is what the
//! merged-vs-monolithic integration check exercises.

use pds_core::error::{PdsError, Result};

use crate::dp::DpTables;
use crate::histogram::{Bucket, Histogram};
use crate::oracle::{BucketCostOracle, BucketSolution};

/// One piece of a piecewise-constant summary: `width` consecutive items
/// sharing the value `value`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Piece {
    /// Number of consecutive items the piece covers (must be positive).
    pub width: usize,
    /// The constant value over the piece.
    pub value: f64,
}

/// Weighted-SSE bucket-cost oracle over a piecewise-constant summary: the
/// oracle's domain is the *piece index space* `[0, k)`, and the cost of a
/// piece range is the width-weighted SSE of approximating its values by one
/// representative.
#[derive(Debug, Clone)]
pub struct PiecewiseConstantOracle {
    /// `prefix_w[i+1] = Σ_{p ≤ i} width_p`.
    prefix_w: Vec<f64>,
    /// `prefix_wv[i+1] = Σ_{p ≤ i} width_p · value_p`.
    prefix_wv: Vec<f64>,
    /// `prefix_wv2[i+1] = Σ_{p ≤ i} width_p · value_p²`.
    prefix_wv2: Vec<f64>,
    /// Item offset of every piece (`item_start[k]` = total item count).
    item_start: Vec<usize>,
}

impl PiecewiseConstantOracle {
    /// Builds the oracle over the given pieces.
    pub fn new(pieces: &[Piece]) -> Result<Self> {
        if pieces.is_empty() {
            return Err(PdsError::InvalidParameter {
                message: "a piecewise summary needs at least one piece".into(),
            });
        }
        let mut prefix_w = vec![0.0; pieces.len() + 1];
        let mut prefix_wv = vec![0.0; pieces.len() + 1];
        let mut prefix_wv2 = vec![0.0; pieces.len() + 1];
        let mut item_start = vec![0usize; pieces.len() + 1];
        for (i, p) in pieces.iter().enumerate() {
            if p.width == 0 {
                return Err(PdsError::InvalidParameter {
                    message: format!("piece {i} has width 0"),
                });
            }
            if !p.value.is_finite() {
                return Err(PdsError::InvalidParameter {
                    message: format!("piece {i} has non-finite value {}", p.value),
                });
            }
            let w = p.width as f64;
            prefix_w[i + 1] = prefix_w[i] + w;
            prefix_wv[i + 1] = prefix_wv[i] + w * p.value;
            prefix_wv2[i + 1] = prefix_wv2[i] + w * p.value * p.value;
            item_start[i + 1] = item_start[i] + p.width;
        }
        Ok(PiecewiseConstantOracle {
            prefix_w,
            prefix_wv,
            prefix_wv2,
            item_start,
        })
    }

    /// Number of items covered by all pieces together.
    pub fn total_items(&self) -> usize {
        *self.item_start.last().expect("non-empty")
    }

    /// The global item index at which piece `p` starts.
    pub fn item_start(&self, p: usize) -> usize {
        self.item_start[p]
    }
}

impl BucketCostOracle for PiecewiseConstantOracle {
    fn n(&self) -> usize {
        self.item_start.len() - 1
    }

    fn bucket(&self, s: usize, e: usize) -> BucketSolution {
        let w = self.prefix_w[e + 1] - self.prefix_w[s];
        let wv = self.prefix_wv[e + 1] - self.prefix_wv[s];
        let wv2 = self.prefix_wv2[e + 1] - self.prefix_wv2[s];
        let representative = wv / w;
        BucketSolution {
            representative,
            cost: (wv2 - wv * wv / w).max(0.0),
        }
    }
}

/// Builds the optimal `b`-bucket histogram of a piecewise-constant summary,
/// returned in **item coordinates** (bucket boundaries are piece boundaries,
/// so every cut is one of the candidate partition/bucket edges).
pub fn optimal_piecewise_histogram(pieces: &[Piece], b: usize) -> Result<Histogram> {
    let oracle = PiecewiseConstantOracle::new(pieces)?;
    let tables = DpTables::build(&oracle, b)?;
    let piece_level = tables.extract(b.min(oracle.n()), &oracle)?;
    // Re-express piece-index buckets as item-index buckets.
    let buckets = piece_level
        .buckets()
        .iter()
        .map(|bk| Bucket {
            start: oracle.item_start(bk.start),
            end: oracle.item_start(bk.end + 1) - 1,
            representative: bk.representative,
            cost: bk.cost,
        })
        .collect();
    Histogram::new(oracle.total_items(), buckets)
}

/// The pieces of one histogram: its buckets, in order.
pub fn pieces_of(histogram: &Histogram) -> Vec<Piece> {
    histogram
        .buckets()
        .iter()
        .map(|b| Piece {
            width: b.width(),
            value: b.representative,
        })
        .collect()
}

/// Merges consecutive per-partition histograms (partition `i + 1` starts
/// where partition `i` ends) into one global `b`-bucket histogram via the
/// partition-merge DP.
pub fn merge_histograms(parts: &[Histogram], b: usize) -> Result<Histogram> {
    if parts.is_empty() {
        return Err(PdsError::InvalidParameter {
            message: "merging needs at least one input histogram".into(),
        });
    }
    let pieces: Vec<Piece> = parts.iter().flat_map(pieces_of).collect();
    optimal_piecewise_histogram(&pieces, b)
}

/// Sums overlapping piecewise-constant summaries over a **common item
/// range** (LSM compaction of same-partition segments): the result is
/// piecewise constant on the union of the input boundaries, with each output
/// piece valued at the sum of the covering input values.
pub fn sum_pieces(layers: &[Vec<Piece>]) -> Result<Vec<Piece>> {
    let total = |pieces: &[Piece]| pieces.iter().map(|p| p.width).sum::<usize>();
    let Some(first) = layers.first() else {
        return Err(PdsError::InvalidParameter {
            message: "summing needs at least one piece layer".into(),
        });
    };
    let n = total(first);
    for (i, layer) in layers.iter().enumerate() {
        if total(layer) != n {
            return Err(PdsError::InvalidParameter {
                message: format!(
                    "piece layer {i} covers {} items but layer 0 covers {n}",
                    total(layer)
                ),
            });
        }
    }
    // Walk all layers in lockstep over item positions.
    let mut cursor: Vec<(usize, usize)> = vec![(0, 0); layers.len()]; // (piece idx, items used)
    let mut out: Vec<Piece> = Vec::new();
    let mut pos = 0usize;
    while pos < n {
        let mut value = 0.0;
        let mut step = n - pos;
        for (layer, cur) in layers.iter().zip(&cursor) {
            let piece = layer[cur.0];
            value += piece.value;
            step = step.min(piece.width - cur.1);
        }
        out.push(Piece { width: step, value });
        pos += step;
        for (layer, cur) in layers.iter().zip(cursor.iter_mut()) {
            cur.1 += step;
            if cur.1 == layer[cur.0].width {
                cur.0 += 1;
                cur.1 = 0;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build_histogram;
    use crate::oracle::sse::{SseObjective, SseOracle};
    use pds_core::metrics::ErrorMetric;
    use pds_core::model::{ProbabilisticRelation, ValuePdfModel};

    fn pieces(spec: &[(usize, f64)]) -> Vec<Piece> {
        spec.iter()
            .map(|&(width, value)| Piece { width, value })
            .collect()
    }

    #[test]
    fn piece_oracle_matches_item_level_sse_on_expanded_data() {
        let ps = pieces(&[(2, 1.0), (3, 4.0), (1, 0.5), (2, 2.0)]);
        let dense: Vec<f64> = ps
            .iter()
            .flat_map(|p| std::iter::repeat_n(p.value, p.width))
            .collect();
        let rel: ProbabilisticRelation = ValuePdfModel::deterministic(&dense).into();
        let item_oracle = SseOracle::new(&rel, SseObjective::FixedRepresentative);
        let piece_oracle = PiecewiseConstantOracle::new(&ps).unwrap();
        for s in 0..ps.len() {
            for e in s..ps.len() {
                let a = piece_oracle.bucket(s, e);
                let b = item_oracle.bucket(piece_oracle.item_start(s), {
                    piece_oracle.item_start(e + 1) - 1
                });
                assert!((a.cost - b.cost).abs() < 1e-9, "pieces [{s},{e}]");
                assert!((a.representative - b.representative).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn merging_a_single_histogram_rebuckets_it_optimally() {
        // A 6-bucket histogram merged down to 2 buckets equals the V-optimal
        // 2-bucket histogram of its estimate vector.
        let dense = [1.0, 1.0, 1.0, 9.0, 9.0, 9.0];
        let rel: ProbabilisticRelation = ValuePdfModel::deterministic(&dense).into();
        let fine = build_histogram(&rel, ErrorMetric::Sse, 6).unwrap();
        let merged = merge_histograms(std::slice::from_ref(&fine), 2).unwrap();
        assert_eq!(merged.boundaries(), vec![2, 5]);
        assert!(merged.total_cost().abs() < 1e-12);
        assert_eq!(merged.n(), 6);
    }

    #[test]
    fn merge_concatenates_partitions_in_item_coordinates() {
        let left = Histogram::from_boundaries(4, &[1, 3], &[2.0, 5.0]).unwrap();
        let right = Histogram::from_boundaries(3, &[0, 2], &[5.0, 1.0]).unwrap();
        let merged = merge_histograms(&[left, right], 3).unwrap();
        assert_eq!(merged.n(), 7);
        // The middle bucket can fuse the matching 5.0 runs across the
        // partition edge.
        let estimates = merged.estimates();
        assert_eq!(estimates[2], 5.0);
        assert_eq!(estimates[4], 5.0);
        assert!(merged.total_cost() < 1e-12);
        assert_eq!(merged.num_buckets(), 3);
    }

    #[test]
    fn merged_cost_never_beats_more_pieces() {
        // Monotonicity in the merge budget: more output buckets, less error.
        let ps = pieces(&[(3, 1.0), (2, 7.0), (4, 3.0), (1, 9.0), (5, 2.0)]);
        let mut prev = f64::INFINITY;
        for b in 1..=5 {
            let h = optimal_piecewise_histogram(&ps, b).unwrap();
            assert!(h.total_cost() <= prev + 1e-9);
            prev = h.total_cost();
        }
        // With as many buckets as pieces the merge is lossless.
        assert!(prev.abs() < 1e-12);
    }

    #[test]
    fn sum_pieces_aligns_boundaries_and_adds_values() {
        let a = pieces(&[(2, 1.0), (2, 3.0)]);
        let b = pieces(&[(1, 10.0), (3, 20.0)]);
        let sum = sum_pieces(&[a, b]).unwrap();
        assert_eq!(sum, pieces(&[(1, 11.0), (1, 21.0), (2, 23.0)]));
        // Mismatched spans are rejected.
        assert!(sum_pieces(&[pieces(&[(2, 1.0)]), pieces(&[(3, 1.0)])]).is_err());
        assert!(sum_pieces(&[]).is_err());
    }

    #[test]
    fn invalid_pieces_are_rejected() {
        assert!(PiecewiseConstantOracle::new(&[]).is_err());
        assert!(PiecewiseConstantOracle::new(&pieces(&[(0, 1.0)])).is_err());
        assert!(PiecewiseConstantOracle::new(&[Piece {
            width: 1,
            value: f64::NAN
        }])
        .is_err());
        assert!(merge_histograms(&[], 2).is_err());
    }
}
