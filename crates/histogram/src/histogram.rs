//! The histogram synopsis type: a partition of the ordered domain into
//! buckets, each with a single representative value.

use serde::{Deserialize, Serialize};

use pds_core::binio::{ByteReader, ByteWriter};
use pds_core::error::{PdsError, Result};

/// One histogram bucket: the inclusive span `[start, end]` of domain items it
/// covers and the representative value used to approximate every frequency in
/// the span.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Bucket {
    /// First item of the span (inclusive, 0-based).
    pub start: usize,
    /// Last item of the span (inclusive, 0-based).
    pub end: usize,
    /// Representative value `b̂` approximating every item in the span.
    pub representative: f64,
    /// The (expected) error contribution of this bucket under the metric the
    /// histogram was built for.
    pub cost: f64,
}

impl Bucket {
    /// Number of distinct items in the span (the paper's `n_b`).
    pub fn width(&self) -> usize {
        self.end - self.start + 1
    }

    /// Whether the bucket spans item `i`.
    pub fn contains(&self, i: usize) -> bool {
        i >= self.start && i <= self.end
    }
}

/// A `B`-bucket histogram synopsis over the domain `[0, n)`.
///
/// Buckets are contiguous, non-overlapping and cover the whole domain
/// (`s_1 = 0`, `e_B = n − 1`, `s_{k+1} = e_k + 1`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    n: usize,
    buckets: Vec<Bucket>,
    total_cost: f64,
}

impl Histogram {
    /// Builds a histogram from buckets, validating that they partition
    /// `[0, n)`.
    pub fn new(n: usize, buckets: Vec<Bucket>) -> Result<Self> {
        if buckets.is_empty() || n == 0 {
            return Err(PdsError::InvalidParameter {
                message: "histogram needs a non-empty domain and at least one bucket".into(),
            });
        }
        let mut expected_start = 0usize;
        for b in &buckets {
            if b.start != expected_start || b.end < b.start || b.end >= n {
                return Err(PdsError::InvalidParameter {
                    message: format!(
                        "bucket [{}, {}] does not continue the partition of [0, {})",
                        b.start, b.end, n
                    ),
                });
            }
            expected_start = b.end + 1;
        }
        if expected_start != n {
            return Err(PdsError::InvalidParameter {
                message: format!("buckets cover [0, {expected_start}) but the domain is [0, {n})"),
            });
        }
        let total_cost = buckets.iter().map(|b| b.cost).sum();
        Ok(Histogram {
            n,
            buckets,
            total_cost,
        })
    }

    /// Builds a histogram from bucket boundaries (the end index of every
    /// bucket) and representative values; costs are set to zero.
    pub fn from_boundaries(n: usize, ends: &[usize], representatives: &[f64]) -> Result<Self> {
        if ends.len() != representatives.len() {
            return Err(PdsError::InvalidParameter {
                message: "one representative per bucket is required".into(),
            });
        }
        let mut buckets = Vec::with_capacity(ends.len());
        let mut start = 0usize;
        for (&end, &rep) in ends.iter().zip(representatives) {
            buckets.push(Bucket {
                start,
                end,
                representative: rep,
                cost: 0.0,
            });
            start = end + 1;
        }
        Histogram::new(n, buckets)
    }

    /// Domain size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The buckets, in domain order.
    pub fn buckets(&self) -> &[Bucket] {
        &self.buckets
    }

    /// Number of buckets `B`.
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Sum of the per-bucket costs recorded at construction time (the DP
    /// objective value for cumulative metrics).
    pub fn total_cost(&self) -> f64 {
        self.total_cost
    }

    /// Maximum of the per-bucket costs (the DP objective value for
    /// maximum-error metrics).
    pub fn max_bucket_cost(&self) -> f64 {
        self.buckets.iter().map(|b| b.cost).fold(0.0, f64::max)
    }

    /// The estimated frequency `ĝ_i` of item `i` (the representative of the
    /// bucket containing it).
    pub fn estimate(&self, i: usize) -> f64 {
        let idx = self
            .buckets
            .partition_point(|b| b.end < i)
            .min(self.buckets.len() - 1);
        self.buckets[idx].representative
    }

    /// All estimated frequencies as a dense vector.
    pub fn estimates(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.n);
        for b in &self.buckets {
            out.extend(std::iter::repeat_n(b.representative, b.width()));
        }
        out
    }

    /// The bucket end boundaries.
    pub fn boundaries(&self) -> Vec<usize> {
        self.buckets.iter().map(|b| b.end).collect()
    }

    /// The histogram JSON envelope version written by [`Histogram::to_json`].
    pub const FORMAT_VERSION: u32 = 1;

    /// Re-checks every structural invariant: buckets partition `[0, n)`,
    /// costs and representatives are finite, costs are non-negative, and the
    /// recorded total matches the per-bucket sum.
    ///
    /// `Histogram::new` establishes these at construction time; this is the
    /// entry point for histograms that arrived from outside (deserialised
    /// from a catalog, handed over a process boundary) where the invariants
    /// cannot be assumed.
    pub fn validate(&self) -> Result<()> {
        // Partition checks are identical to construction.
        Histogram::new(self.n, self.buckets.clone())?;
        for b in &self.buckets {
            if !b.cost.is_finite() || b.cost < 0.0 {
                return Err(PdsError::InvalidParameter {
                    message: format!(
                        "bucket [{}, {}] has invalid cost {}",
                        b.start, b.end, b.cost
                    ),
                });
            }
            if !b.representative.is_finite() {
                return Err(PdsError::InvalidParameter {
                    message: format!(
                        "bucket [{}, {}] has non-finite representative {}",
                        b.start, b.end, b.representative
                    ),
                });
            }
        }
        let sum: f64 = self.buckets.iter().map(|b| b.cost).sum();
        if !self.total_cost.is_finite() || (self.total_cost - sum).abs() > 1e-6 * (1.0 + sum.abs())
        {
            return Err(PdsError::InvalidParameter {
                message: format!(
                    "recorded total cost {} disagrees with the bucket sum {sum}",
                    self.total_cost
                ),
            });
        }
        Ok(())
    }

    /// Serialises the histogram into a versioned JSON envelope.
    ///
    /// Unlike the raw serde implementation, this returns a [`PdsError`] on
    /// unserialisable values (e.g. NaN costs) instead of panicking, and
    /// stamps the format version plus the bucket count so that
    /// [`Histogram::from_json`] can detect skew and truncation.
    pub fn to_json(&self) -> Result<String> {
        // Symmetric with `from_json`: refuse to persist a histogram that the
        // reader would reject, so corruption surfaces at the writer.
        self.validate()?;
        let envelope = HistogramEnvelope {
            version: Self::FORMAT_VERSION,
            num_buckets: self.buckets.len(),
            histogram: self.clone(),
        };
        serde_json::to_string(&envelope).map_err(|e| PdsError::InvalidParameter {
            message: format!("histogram serialisation failed: {e}"),
        })
    }

    /// Parses a histogram from the versioned JSON envelope, rejecting
    /// truncated input, version skew, bucket-count mismatches and structurally
    /// invalid histograms with a [`PdsError`] — never a panic.
    pub fn from_json(text: &str) -> Result<Self> {
        let envelope: HistogramEnvelope =
            serde_json::from_str(text).map_err(|e| PdsError::InvalidParameter {
                message: format!("histogram deserialisation failed: {e}"),
            })?;
        if envelope.version != Self::FORMAT_VERSION {
            return Err(PdsError::InvalidParameter {
                message: format!(
                    "histogram envelope version {} is not supported (expected {})",
                    envelope.version,
                    Self::FORMAT_VERSION
                ),
            });
        }
        if envelope.num_buckets != envelope.histogram.buckets.len() {
            return Err(PdsError::InvalidParameter {
                message: format!(
                    "envelope declares {} buckets but the histogram carries {}",
                    envelope.num_buckets,
                    envelope.histogram.buckets.len()
                ),
            });
        }
        envelope.histogram.validate()?;
        Ok(envelope.histogram)
    }

    /// Magic bytes of the compact binary encoding.
    pub const BINARY_MAGIC: [u8; 4] = *b"PDSH";

    /// Version stamp of the compact binary encoding written by
    /// [`Histogram::to_binary`].
    pub const BINARY_VERSION: u16 = 1;

    /// Flag bit of the binary encoding: per-bucket costs are present.
    const BINARY_FLAG_COSTS: u8 = 1;

    /// Serialises the histogram into the compact binary format: a versioned
    /// envelope, a flags byte, the domain size, then one record per bucket
    /// holding the bucket *width* as a varint (starts are implied by the
    /// partition invariant), the representative as a raw IEEE-754 double,
    /// and — when the costs flag is set — the cost double.
    ///
    /// `to_binary` keeps the per-bucket cost diagnostics (full fidelity for
    /// persisted DP results); [`Histogram::to_binary_compact`] drops them
    /// for serving-grade artefacts like store segments.  Both are 5–7x
    /// smaller than the JSON envelope of [`Histogram::to_json`], which
    /// spells out field names and full-precision decimal floats; JSON stays
    /// available as the debug encoding.  Like `to_json`, an invalid
    /// histogram is refused at the writer so corruption surfaces early.
    pub fn to_binary(&self) -> Result<Vec<u8>> {
        self.encode_binary(true)
    }

    /// Serialises like [`Histogram::to_binary`] but without the per-bucket
    /// cost diagnostics: decoding yields the same bucketing and
    /// representatives with all costs zero (use
    /// [`Histogram::without_costs`] to produce the matching in-memory
    /// value).
    pub fn to_binary_compact(&self) -> Result<Vec<u8>> {
        self.encode_binary(false)
    }

    fn encode_binary(&self, with_costs: bool) -> Result<Vec<u8>> {
        self.validate()?;
        let mut w = ByteWriter::envelope(Self::BINARY_MAGIC, Self::BINARY_VERSION);
        w.put_u8(if with_costs {
            Self::BINARY_FLAG_COSTS
        } else {
            0
        });
        w.put_varint(self.n as u64);
        w.put_varint(self.buckets.len() as u64);
        for b in &self.buckets {
            w.put_varint(b.width() as u64);
            w.put_f64(b.representative);
            if with_costs {
                w.put_f64(b.cost);
            }
        }
        Ok(w.into_bytes())
    }

    /// Parses a histogram from the compact binary format, turning truncated
    /// input, bad magic, version skew, absurd declared sizes and structurally
    /// invalid histograms into [`PdsError`]s — never a panic.
    pub fn from_binary(bytes: &[u8]) -> Result<Self> {
        let (mut r, version) = ByteReader::envelope(bytes, "histogram", Self::BINARY_MAGIC)?;
        if version != Self::BINARY_VERSION {
            return Err(PdsError::InvalidParameter {
                message: format!(
                    "histogram binary version {version} is not supported (expected {})",
                    Self::BINARY_VERSION
                ),
            });
        }
        let flags = r.get_u8()?;
        if flags & !Self::BINARY_FLAG_COSTS != 0 {
            return Err(PdsError::InvalidParameter {
                message: format!("histogram: unknown binary flags {flags:#x}"),
            });
        }
        let with_costs = flags & Self::BINARY_FLAG_COSTS != 0;
        let n = r.get_len(u32::MAX as usize)?;
        let num_buckets = r.get_len(n)?;
        let mut buckets = Vec::with_capacity(num_buckets);
        let mut start = 0usize;
        for _ in 0..num_buckets {
            let width = r.get_len(n)?;
            let representative = r.get_f64()?;
            let cost = if with_costs { r.get_f64()? } else { 0.0 };
            let end = start
                .checked_add(width)
                .and_then(|e| e.checked_sub(1))
                .ok_or_else(|| PdsError::InvalidParameter {
                    message: "histogram: bucket width 0 in binary input".into(),
                })?;
            buckets.push(Bucket {
                start,
                end,
                representative,
                cost,
            });
            start = end + 1;
        }
        r.finish()?;
        let histogram = Histogram::new(n, buckets)?;
        histogram.validate()?;
        Ok(histogram)
    }

    /// A copy with every per-bucket cost (and hence the recorded total)
    /// zeroed — the serving-grade shape used by store segments, where the
    /// build-time error diagnostics are not persisted.
    pub fn without_costs(&self) -> Self {
        let buckets = self
            .buckets
            .iter()
            .map(|b| Bucket { cost: 0.0, ..*b })
            .collect();
        Histogram::new(self.n, buckets).expect("structure unchanged")
    }

    /// Returns a copy of this histogram with the representative of every
    /// bucket replaced by the supplied values (used when re-fitting
    /// representatives of a heuristic bucketing).
    pub fn with_representatives(&self, representatives: &[f64]) -> Result<Self> {
        if representatives.len() != self.buckets.len() {
            return Err(PdsError::InvalidParameter {
                message: "one representative per bucket is required".into(),
            });
        }
        let buckets = self
            .buckets
            .iter()
            .zip(representatives)
            .map(|(b, &rep)| Bucket {
                representative: rep,
                ..*b
            })
            .collect();
        Histogram::new(self.n, buckets)
    }
}

/// Versioned wire envelope for [`Histogram::to_json`] / [`Histogram::from_json`].
#[derive(Serialize, Deserialize)]
struct HistogramEnvelope {
    version: u32,
    num_buckets: usize,
    histogram: Histogram,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Histogram {
        Histogram::new(
            6,
            vec![
                Bucket {
                    start: 0,
                    end: 1,
                    representative: 2.0,
                    cost: 0.5,
                },
                Bucket {
                    start: 2,
                    end: 4,
                    representative: 5.0,
                    cost: 1.5,
                },
                Bucket {
                    start: 5,
                    end: 5,
                    representative: 0.0,
                    cost: 0.0,
                },
            ],
        )
        .unwrap()
    }

    #[test]
    fn estimates_follow_bucket_representatives() {
        let h = sample();
        assert_eq!(h.estimate(0), 2.0);
        assert_eq!(h.estimate(1), 2.0);
        assert_eq!(h.estimate(2), 5.0);
        assert_eq!(h.estimate(4), 5.0);
        assert_eq!(h.estimate(5), 0.0);
        assert_eq!(h.estimates(), vec![2.0, 2.0, 5.0, 5.0, 5.0, 0.0]);
    }

    #[test]
    fn totals_and_shape() {
        let h = sample();
        assert_eq!(h.num_buckets(), 3);
        assert_eq!(h.n(), 6);
        assert!((h.total_cost() - 2.0).abs() < 1e-12);
        assert!((h.max_bucket_cost() - 1.5).abs() < 1e-12);
        assert_eq!(h.boundaries(), vec![1, 4, 5]);
        assert_eq!(h.buckets()[1].width(), 3);
        assert!(h.buckets()[1].contains(3));
        assert!(!h.buckets()[1].contains(5));
    }

    #[test]
    fn invalid_partitions_are_rejected() {
        // Gap between buckets.
        assert!(Histogram::new(
            4,
            vec![
                Bucket {
                    start: 0,
                    end: 1,
                    representative: 0.0,
                    cost: 0.0
                },
                Bucket {
                    start: 3,
                    end: 3,
                    representative: 0.0,
                    cost: 0.0
                },
            ],
        )
        .is_err());
        // Does not reach the end of the domain.
        assert!(Histogram::new(
            4,
            vec![Bucket {
                start: 0,
                end: 2,
                representative: 0.0,
                cost: 0.0
            }],
        )
        .is_err());
        // Beyond the domain.
        assert!(Histogram::new(
            2,
            vec![Bucket {
                start: 0,
                end: 2,
                representative: 0.0,
                cost: 0.0
            }],
        )
        .is_err());
        // Empty.
        assert!(Histogram::new(2, vec![]).is_err());
    }

    #[test]
    fn from_boundaries_and_refit() {
        let h = Histogram::from_boundaries(5, &[1, 4], &[1.0, 2.0]).unwrap();
        assert_eq!(h.num_buckets(), 2);
        assert_eq!(h.estimate(3), 2.0);
        let refit = h.with_representatives(&[7.0, 8.0]).unwrap();
        assert_eq!(refit.estimate(0), 7.0);
        assert_eq!(refit.estimate(4), 8.0);
        assert!(h.with_representatives(&[1.0]).is_err());
        assert!(Histogram::from_boundaries(5, &[1, 4], &[1.0]).is_err());
    }

    #[test]
    fn serde_round_trip() {
        let h = sample();
        let json = serde_json::to_string(&h).unwrap();
        let back: Histogram = serde_json::from_str(&json).unwrap();
        assert_eq!(h, back);
    }

    #[test]
    fn binary_round_trip_is_exact() {
        let h = sample();
        let bytes = h.to_binary().unwrap();
        let back = Histogram::from_binary(&bytes).unwrap();
        assert_eq!(h, back);
    }

    #[test]
    fn compact_binary_drops_costs_but_keeps_the_bucketing() {
        let h = sample();
        let compact = h.to_binary_compact().unwrap();
        assert!(compact.len() < h.to_binary().unwrap().len());
        let back = Histogram::from_binary(&compact).unwrap();
        assert_eq!(back, h.without_costs());
        assert_eq!(back.estimates(), h.estimates());
        assert_eq!(back.total_cost(), 0.0);
        // Unknown flag bits are rejected.
        let mut bad_flags = h.to_binary().unwrap();
        bad_flags[6] |= 0x80;
        assert!(Histogram::from_binary(&bad_flags).is_err());
    }

    #[test]
    fn binary_rejects_truncation_version_skew_and_garbage() {
        let h = sample();
        let bytes = h.to_binary().unwrap();
        // Every strict prefix fails cleanly.
        for cut in 0..bytes.len() {
            assert!(
                Histogram::from_binary(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes should fail"
            );
        }
        // Trailing garbage.
        let mut long = bytes.clone();
        long.push(0);
        assert!(Histogram::from_binary(&long).is_err());
        // Version skew.
        let mut skewed = bytes.clone();
        skewed[4] = 99;
        assert!(Histogram::from_binary(&skewed).is_err());
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(Histogram::from_binary(&bad).is_err());
        // NaN cost is refused by the writer.
        let mut nan = sample();
        nan.buckets[0].cost = f64::NAN;
        assert!(nan.to_binary().is_err());
    }
}
