//! Sum-absolute-error and sum-absolute-relative-error bucket-cost oracles
//! (Sections 3.3 and 3.4 of the paper, Theorems 3 and 4).
//!
//! Both metrics are instances of one weighted problem: approximate the items
//! of a bucket by a single representative `b̂` minimising
//! `Σ_{i∈b} Σ_{v_j∈V} w_{i,j} |v_j − b̂|`, where
//!
//! * SAE:  `w_{i,j} = Pr[g_i = v_j]`;
//! * SARE: `w_{i,j} = Pr[g_i = v_j] / max(c, v_j)`.
//!
//! The paper shows the optimal representative is always one of the frequency
//! values `v_j ∈ V` and that the cost, as a function of the chosen value
//! index, decreases then increases (it is unimodal with a monotone discrete
//! derivative).  Precomputing, for every value index and every domain prefix,
//! the cumulative-weight sums `Σ_{j<l} P_{j,s,e}(v_{j+1}−v_j)` and
//! `Σ_{j≥l} P*_{j,s,e}(v_{j+1}−v_j)` lets us evaluate any candidate in `O(1)`
//! and locate the optimum by binary search on the discrete derivative in
//! `O(log |V|)` per bucket.

use pds_core::model::ProbabilisticRelation;
use pds_core::values::ValueDomain;

use super::{BucketCostOracle, BucketSolution};

/// Which weighted-absolute metric the oracle evaluates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AbsMetricKind {
    /// Sum absolute error.
    Sae,
    /// Sum absolute relative error with the given sanity bound.
    Sare {
        /// Sanity bound.
        c: f64,
    },
}

/// Weighted sum-absolute-error bucket-cost oracle (SAE and SARE).
#[derive(Debug, Clone)]
pub struct WeightedAbsOracle {
    n: usize,
    kind: AbsMetricKind,
    domain: ValueDomain,
    /// `below[l][e+1] = Σ_{i ≤ e} Σ_{j < l} W_{i,j} (v_{j+1} − v_j)` where
    /// `W_{i,j} = Σ_{r ≤ j} w_{i,r}`.
    below: Vec<Vec<f64>>,
    /// `above[l][e+1] = Σ_{i ≤ e} Σ_{j ≥ l} W*_{i,j} (v_{j+1} − v_j)` where
    /// `W*_{i,j} = Σ_{r > j} w_{i,r}`.
    above: Vec<Vec<f64>>,
}

impl WeightedAbsOracle {
    /// Builds the SAE oracle.
    pub fn sae(relation: &ProbabilisticRelation) -> Self {
        Self::with_kind(relation, AbsMetricKind::Sae)
    }

    /// Builds the SARE oracle with sanity bound `c > 0`.
    pub fn sare(relation: &ProbabilisticRelation, c: f64) -> Self {
        assert!(c > 0.0, "the sanity bound c must be positive");
        Self::with_kind(relation, AbsMetricKind::Sare { c })
    }

    /// Builds the oracle for an explicit metric kind.
    pub fn with_kind(relation: &ProbabilisticRelation, kind: AbsMetricKind) -> Self {
        let n = relation.n();
        let pdfs = relation.induced_value_pdfs();
        let domain = ValueDomain::from_value_pdfs(&pdfs);
        let dense = domain.dense_probabilities(&pdfs);
        let v = domain.values();
        let k = v.len();
        let gap: Vec<f64> = (0..k)
            .map(|j| if j + 1 < k { v[j + 1] - v[j] } else { 0.0 })
            .collect();
        let weight = |value: f64| match kind {
            AbsMetricKind::Sae => 1.0,
            AbsMetricKind::Sare { c } => 1.0 / c.max(value.abs()),
        };

        // below[l][i+1], above[l][i+1], cumulated over items.
        let mut below = vec![vec![0.0; n + 1]; k + 1];
        let mut above = vec![vec![0.0; n + 1]; k + 1];
        let mut w_row = vec![0.0; k];
        for i in 0..n {
            for (j, w) in w_row.iter_mut().enumerate() {
                *w = dense[i][j] * weight(v[j]);
            }
            // Cumulative weights W_{i,j} (from below) and W*_{i,j} (from above).
            let mut cum = 0.0;
            let mut below_item = vec![0.0; k + 1]; // Σ_{j<l} W_{i,j} gap_j
            for l in 0..k {
                below_item[l + 1] = below_item[l] + cum_gap(&mut cum, w_row[l], gap[l]);
            }
            let mut cum_above = 0.0;
            let mut above_item = vec![0.0; k + 1]; // Σ_{j>=l} W*_{i,j} gap_j
            for l in (0..k).rev() {
                // W*_{i,l} = Σ_{r > l} w_{i,r}; accumulate r from the top.
                above_item[l] = above_item[l + 1] + cum_above * gap[l];
                cum_above += w_row[l];
            }
            for l in 0..=k {
                below[l][i + 1] = below[l][i] + below_item[l];
                above[l][i + 1] = above[l][i] + above_item[l];
            }
        }

        WeightedAbsOracle {
            n,
            kind,
            domain,
            below,
            above,
        }
    }

    /// The metric kind this oracle evaluates.
    pub fn kind(&self) -> AbsMetricKind {
        self.kind
    }

    /// The frequency value domain `V`.
    pub fn domain(&self) -> &ValueDomain {
        &self.domain
    }

    /// Bucket cost when the representative is pinned to the `l`-th value of
    /// `V` (`0 ≤ l < |V|`).
    pub fn cost_at_value_index(&self, s: usize, e: usize, l: usize) -> f64 {
        (self.below[l][e + 1] - self.below[l][s]) + (self.above[l][e + 1] - self.above[l][s])
    }

    fn best_value_index(&self, s: usize, e: usize) -> usize {
        let k = self.domain.len();
        if k <= 1 {
            return 0;
        }
        // The discrete derivative D(l) = cost(l+1) − cost(l) changes sign at
        // most once (negative then non-negative); the optimum is the first l
        // with D(l) >= 0, or the last index if D stays negative.
        let mut lo = 0usize;
        let mut hi = k - 1; // candidate answer range over l
        while lo < hi {
            let mid = (lo + hi) / 2;
            let d = self.cost_at_value_index(s, e, mid + 1) - self.cost_at_value_index(s, e, mid);
            if d >= 0.0 {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        lo
    }
}

fn cum_gap(cum: &mut f64, w: f64, gap: f64) -> f64 {
    *cum += w;
    *cum * gap
}

impl BucketCostOracle for WeightedAbsOracle {
    fn n(&self) -> usize {
        self.n
    }

    fn bucket(&self, s: usize, e: usize) -> BucketSolution {
        let l = self.best_value_index(s, e);
        BucketSolution {
            representative: self.domain.value(l),
            cost: self.cost_at_value_index(s, e, l).max(0.0),
        }
    }

    fn costs_ending_at(&self, e: usize, starts: &[usize]) -> Vec<f64> {
        // The prefix-moment accumulators `below`/`above` already answer any
        // candidate value in O(1); per start the optimum is located by the
        // same binary search on the discrete derivative as `bucket`, giving
        // O(log |V|) per start with no per-call setup.
        starts
            .iter()
            .map(|&s| {
                let l = self.best_value_index(s, e);
                self.cost_at_value_index(s, e, l).max(0.0)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pds_core::model::{BasicModel, TuplePdfModel, ValuePdf, ValuePdfModel};
    use pds_core::worlds::PossibleWorlds;

    fn relations() -> Vec<ProbabilisticRelation> {
        vec![
            BasicModel::from_pairs(3, [(0, 0.5), (1, 1.0 / 3.0), (1, 0.25), (2, 0.5)])
                .unwrap()
                .into(),
            TuplePdfModel::from_alternatives(
                3,
                [vec![(0, 0.5), (1, 1.0 / 3.0)], vec![(1, 0.25), (2, 0.5)]],
            )
            .unwrap()
            .into(),
            ValuePdfModel::from_sparse(
                4,
                [
                    (0, ValuePdf::new([(1.0, 0.5)]).unwrap()),
                    (1, ValuePdf::new([(1.0, 1.0 / 3.0), (2.5, 0.25)]).unwrap()),
                    (3, ValuePdf::new([(4.0, 0.75), (0.5, 0.2)]).unwrap()),
                ],
            )
            .unwrap()
            .into(),
        ]
    }

    fn brute_force_cost(
        worlds: &PossibleWorlds,
        s: usize,
        e: usize,
        rep: f64,
        weight: impl Fn(f64) -> f64,
    ) -> f64 {
        worlds.expectation(|w| w[s..=e].iter().map(|&g| weight(g) * (g - rep).abs()).sum())
    }

    #[test]
    fn sae_cost_matches_brute_force_at_its_representative() {
        for rel in relations() {
            let worlds = PossibleWorlds::enumerate(&rel).unwrap();
            let oracle = WeightedAbsOracle::sae(&rel);
            for s in 0..rel.n() {
                for e in s..rel.n() {
                    let sol = oracle.bucket(s, e);
                    let brute = brute_force_cost(&worlds, s, e, sol.representative, |_| 1.0);
                    assert!(
                        (sol.cost - brute).abs() < 1e-9,
                        "{} [{s},{e}]: {} vs {brute}",
                        rel.model_name(),
                        sol.cost
                    );
                }
            }
        }
    }

    #[test]
    fn sare_cost_matches_brute_force_at_its_representative() {
        for rel in relations() {
            let worlds = PossibleWorlds::enumerate(&rel).unwrap();
            for c in [0.5, 1.0] {
                let oracle = WeightedAbsOracle::sare(&rel, c);
                for s in 0..rel.n() {
                    for e in s..rel.n() {
                        let sol = oracle.bucket(s, e);
                        let brute = brute_force_cost(&worlds, s, e, sol.representative, |g| {
                            1.0 / c.max(g.abs())
                        });
                        assert!(
                            (sol.cost - brute).abs() < 1e-9,
                            "{} c={c} [{s},{e}]",
                            rel.model_name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn representative_beats_every_candidate_value() {
        for rel in relations() {
            let worlds = PossibleWorlds::enumerate(&rel).unwrap();
            let oracle = WeightedAbsOracle::sae(&rel);
            let candidates: Vec<f64> = (0..=80).map(|i| i as f64 * 0.1).collect();
            for s in 0..rel.n() {
                for e in s..rel.n() {
                    let sol = oracle.bucket(s, e);
                    for &cand in &candidates {
                        let cost = brute_force_cost(&worlds, s, e, cand, |_| 1.0);
                        assert!(
                            cost >= sol.cost - 1e-9,
                            "{} [{s},{e}] candidate {cand} beats the oracle: {cost} < {}",
                            rel.model_name(),
                            sol.cost
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn sare_representative_beats_every_candidate_value() {
        for rel in relations() {
            let worlds = PossibleWorlds::enumerate(&rel).unwrap();
            let c = 0.5;
            let oracle = WeightedAbsOracle::sare(&rel, c);
            let candidates: Vec<f64> = (0..=80).map(|i| i as f64 * 0.1).collect();
            for s in 0..rel.n() {
                for e in s..rel.n() {
                    let sol = oracle.bucket(s, e);
                    for &cand in &candidates {
                        let cost = brute_force_cost(&worlds, s, e, cand, |g| 1.0 / c.max(g.abs()));
                        assert!(cost >= sol.cost - 1e-9);
                    }
                }
            }
        }
    }

    #[test]
    fn deterministic_data_reduces_to_weighted_median() {
        // For deterministic data the optimal SAE representative is a median
        // of the bucket values and the cost is the sum of absolute deviations.
        let freqs = [5.0, 1.0, 2.0, 9.0, 2.0, 2.0];
        let rel: ProbabilisticRelation = ValuePdfModel::deterministic(&freqs).into();
        let oracle = WeightedAbsOracle::sae(&rel);
        for s in 0..freqs.len() {
            for e in s..freqs.len() {
                let sol = oracle.bucket(s, e);
                let mut vals: Vec<f64> = freqs[s..=e].to_vec();
                vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
                let best: f64 = vals
                    .iter()
                    .map(|&m| freqs[s..=e].iter().map(|&g| (g - m).abs()).sum::<f64>())
                    .fold(f64::INFINITY, f64::min);
                assert!((sol.cost - best).abs() < 1e-9, "[{s},{e}]");
            }
        }
    }

    #[test]
    fn representative_always_belongs_to_the_value_domain() {
        for rel in relations() {
            let oracle = WeightedAbsOracle::sae(&rel);
            let values = oracle.domain().values().to_vec();
            for s in 0..rel.n() {
                for e in s..rel.n() {
                    let rep = oracle.bucket(s, e).representative;
                    assert!(values.iter().any(|&v| (v - rep).abs() < 1e-12));
                }
            }
        }
    }

    #[test]
    fn costs_ending_at_matches_bucket() {
        let rel = &relations()[1];
        let oracle = WeightedAbsOracle::sare(rel, 1.0);
        for e in 0..rel.n() {
            let starts: Vec<usize> = (0..=e).collect();
            let out = oracle.costs_ending_at(e, &starts);
            for (s, &cost) in out.iter().enumerate() {
                assert!((cost - oracle.bucket(s, e).cost).abs() < 1e-12);
            }
        }
    }

    #[test]
    #[should_panic(expected = "sanity bound")]
    fn invalid_sanity_bound_panics() {
        let rel = &relations()[0];
        let _ = WeightedAbsOracle::sare(rel, -1.0);
    }
}
