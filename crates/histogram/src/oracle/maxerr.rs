//! Maximum-absolute-error and maximum-absolute-relative-error bucket-cost
//! oracles (Section 3.6 of the paper, Theorem 6).
//!
//! The bucket cost is the *maximum over items* of the per-item expected
//! error, `max_{s ≤ i ≤ e} Σ_j w_{i,j} |v_j − b̂|`, where the weights are
//! `w_{i,j} = Pr[g_i = v_j]` (MAE) or `Pr[g_i = v_j]/max(c, v_j)` (MARE).
//! Every per-item function `f_i(b̂)` is convex piecewise linear with
//! breakpoints in `V`, so their upper envelope is convex as well.  Following
//! the paper we
//!
//! 1. ternary-search over the values of `V` to bracket the segment containing
//!    the optimum (each evaluation costs `O(n_b)` using per-item prefix sums
//!    over the value domain), then
//! 2. minimise the maximum of `n_b` univariate linear functions on that
//!    segment exactly, via the upper envelope of the lines.

use pds_core::model::ProbabilisticRelation;
use pds_core::values::ValueDomain;

use super::{BucketCostOracle, BucketSolution};

/// Which maximum-error metric the oracle evaluates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MaxMetricKind {
    /// Maximum absolute error.
    Mae,
    /// Maximum absolute relative error with the given sanity bound.
    Mare {
        /// Sanity bound.
        c: f64,
    },
}

/// Maximum-error bucket-cost oracle (MAE and MARE).
#[derive(Debug, Clone)]
pub struct MaxErrOracle {
    n: usize,
    kind: MaxMetricKind,
    domain: ValueDomain,
    /// `w_cum[i][l] = Σ_{r ≤ l} w_{i,r}` (per item, cumulative over values).
    w_cum: Vec<Vec<f64>>,
    /// `m_cum[i][l] = Σ_{r ≤ l} w_{i,r} v_r`.
    m_cum: Vec<Vec<f64>>,
    /// `Σ_r w_{i,r}` per item.
    total_w: Vec<f64>,
    /// `Σ_r w_{i,r} v_r` per item.
    total_m: Vec<f64>,
}

impl MaxErrOracle {
    /// Builds the MAE oracle.
    pub fn mae(relation: &ProbabilisticRelation) -> Self {
        Self::with_kind(relation, MaxMetricKind::Mae)
    }

    /// Builds the MARE oracle with sanity bound `c > 0`.
    pub fn mare(relation: &ProbabilisticRelation, c: f64) -> Self {
        assert!(c > 0.0, "the sanity bound c must be positive");
        Self::with_kind(relation, MaxMetricKind::Mare { c })
    }

    /// Builds the oracle for an explicit metric kind.
    pub fn with_kind(relation: &ProbabilisticRelation, kind: MaxMetricKind) -> Self {
        let n = relation.n();
        let pdfs = relation.induced_value_pdfs();
        let domain = ValueDomain::from_value_pdfs(&pdfs);
        let dense = domain.dense_probabilities(&pdfs);
        let v = domain.values();
        let k = v.len();
        let weight = |value: f64| match kind {
            MaxMetricKind::Mae => 1.0,
            MaxMetricKind::Mare { c } => 1.0 / c.max(value.abs()),
        };
        let mut w_cum = vec![vec![0.0; k]; n];
        let mut m_cum = vec![vec![0.0; k]; n];
        let mut total_w = vec![0.0; n];
        let mut total_m = vec![0.0; n];
        for i in 0..n {
            let mut wc = 0.0;
            let mut mc = 0.0;
            for j in 0..k {
                let w = dense[i][j] * weight(v[j]);
                wc += w;
                mc += w * v[j];
                w_cum[i][j] = wc;
                m_cum[i][j] = mc;
            }
            total_w[i] = wc;
            total_m[i] = mc;
        }
        MaxErrOracle {
            n,
            kind,
            domain,
            w_cum,
            m_cum,
            total_w,
            total_m,
        }
    }

    /// The metric kind this oracle evaluates.
    pub fn kind(&self) -> MaxMetricKind {
        self.kind
    }

    /// The frequency value domain `V`.
    pub fn domain(&self) -> &ValueDomain {
        &self.domain
    }

    /// The per-item expected error `f_i(b̂) = Σ_j w_{i,j} |v_j − b̂|` as a
    /// linear function of `b̂` on the segment `[v_l, v_{l+1}]`, returned as
    /// `(slope, intercept)`.
    fn item_line(&self, i: usize, l: usize) -> (f64, f64) {
        let slope = 2.0 * self.w_cum[i][l] - self.total_w[i];
        let intercept = self.total_m[i] - 2.0 * self.m_cum[i][l];
        (slope, intercept)
    }

    /// `max_i f_i(v_l)` over the bucket `[s, e]`.
    fn envelope_at_value(&self, s: usize, e: usize, l: usize) -> f64 {
        let x = self.domain.value(l);
        let mut best = f64::NEG_INFINITY;
        for i in s..=e {
            let (a, c) = self.item_line(i, l);
            best = best.max(a * x + c);
        }
        best
    }

    /// Minimises `max_i f_i(b̂)` over `b̂ ∈ [v_l, v_{l+1}]` exactly.
    fn minimise_segment(&self, s: usize, e: usize, l: usize) -> (f64, f64) {
        let lo = self.domain.value(l);
        let hi = self.domain.value((l + 1).min(self.domain.len() - 1));
        let lines: Vec<(f64, f64)> = (s..=e).map(|i| self.item_line(i, l)).collect();
        minimise_max_of_lines(&lines, lo, hi)
    }
}

/// Minimises the upper envelope `max_i (a_i x + c_i)` over `x ∈ [lo, hi]`,
/// returning `(argmin, min)`.  Exact: the minimum of a convex piecewise-linear
/// function over an interval is attained at an endpoint or at a breakpoint of
/// its upper envelope.
pub fn minimise_max_of_lines(lines: &[(f64, f64)], lo: f64, hi: f64) -> (f64, f64) {
    assert!(!lines.is_empty(), "at least one line is required");
    let eval = |x: f64| {
        lines
            .iter()
            .map(|&(a, c)| a * x + c)
            .fold(f64::NEG_INFINITY, f64::max)
    };
    if hi <= lo {
        return (lo, eval(lo));
    }
    // Upper envelope via the convex-hull trick: sort by slope, drop dominated
    // lines, keep the hull of lines that attain the maximum somewhere.
    let mut sorted: Vec<(f64, f64)> = lines.to_vec();
    sorted.sort_by(|x, y| x.partial_cmp(y).expect("finite lines"));
    // For equal slopes only the largest intercept matters.
    let mut dedup: Vec<(f64, f64)> = Vec::with_capacity(sorted.len());
    for (a, c) in sorted {
        match dedup.last_mut() {
            Some(last) if (last.0 - a).abs() < 1e-15 => last.1 = last.1.max(c),
            _ => dedup.push((a, c)),
        }
    }
    let intersect = |l1: (f64, f64), l2: (f64, f64)| -> f64 {
        // x where a1 x + c1 == a2 x + c2 (slopes differ).
        (l2.1 - l1.1) / (l1.0 - l2.0)
    };
    let mut hull: Vec<(f64, f64)> = Vec::with_capacity(dedup.len());
    for line in dedup {
        while hull.len() >= 2 {
            let a = hull[hull.len() - 2];
            let b = hull[hull.len() - 1];
            // `b` is unnecessary if the new line already dominates it at the
            // point where `b` overtakes `a`.
            if intersect(a, line) <= intersect(a, b) {
                hull.pop();
            } else {
                break;
            }
        }
        hull.push(line);
    }
    // Candidate minimisers: the interval endpoints and every envelope
    // breakpoint inside the interval.
    let mut best_x = lo;
    let mut best = eval(lo);
    let consider = |x: f64, best_x: &mut f64, best: &mut f64| {
        let v = eval(x);
        if v < *best {
            *best = v;
            *best_x = x;
        }
    };
    consider(hi, &mut best_x, &mut best);
    for pair in hull.windows(2) {
        let x = intersect(pair[0], pair[1]);
        if x > lo && x < hi {
            consider(x, &mut best_x, &mut best);
        }
    }
    (best_x, best)
}

impl BucketCostOracle for MaxErrOracle {
    fn n(&self) -> usize {
        self.n
    }

    fn bucket(&self, s: usize, e: usize) -> BucketSolution {
        let k = self.domain.len();
        // Ternary search over the value grid for the segment containing the
        // minimum of the (convex) upper envelope.
        let mut lo = 0usize;
        let mut hi = k - 1;
        while hi - lo > 2 {
            let m1 = lo + (hi - lo) / 3;
            let m2 = hi - (hi - lo) / 3;
            if self.envelope_at_value(s, e, m1) <= self.envelope_at_value(s, e, m2) {
                hi = m2;
            } else {
                lo = m1;
            }
        }
        // The optimum lies within [v_{lo-1}, v_{hi+1}]; minimise each candidate
        // segment exactly and keep the best.
        let seg_lo = lo.saturating_sub(1);
        let seg_hi = (hi + 1).min(k - 1);
        let mut best = (self.domain.value(seg_lo), f64::INFINITY);
        for l in seg_lo..seg_hi.max(seg_lo + 1) {
            let (x, val) = self.minimise_segment(s, e, l);
            if val < best.1 {
                best = (x, val);
            }
        }
        if k == 1 {
            best = (self.domain.value(0), self.envelope_at_value(s, e, 0));
        }
        BucketSolution {
            representative: best.0,
            cost: best.1.max(0.0),
        }
    }

    fn is_cumulative(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pds_core::metrics::ErrorMetric;
    use pds_core::model::{BasicModel, TuplePdfModel, ValuePdf, ValuePdfModel};

    fn relations() -> Vec<ProbabilisticRelation> {
        vec![
            BasicModel::from_pairs(3, [(0, 0.5), (1, 1.0 / 3.0), (1, 0.25), (2, 0.5)])
                .unwrap()
                .into(),
            TuplePdfModel::from_alternatives(
                3,
                [vec![(0, 0.5), (1, 1.0 / 3.0)], vec![(1, 0.25), (2, 0.5)]],
            )
            .unwrap()
            .into(),
            ValuePdfModel::from_sparse(
                5,
                [
                    (0, ValuePdf::new([(1.0, 0.5)]).unwrap()),
                    (1, ValuePdf::new([(1.0, 1.0 / 3.0), (2.5, 0.25)]).unwrap()),
                    (2, ValuePdf::new([(6.0, 0.1)]).unwrap()),
                    (3, ValuePdf::new([(4.0, 0.75), (0.5, 0.2)]).unwrap()),
                ],
            )
            .unwrap()
            .into(),
        ]
    }

    fn metric_for(kind: MaxMetricKind) -> ErrorMetric {
        match kind {
            MaxMetricKind::Mae => ErrorMetric::Mae,
            MaxMetricKind::Mare { c } => ErrorMetric::Mare { c },
        }
    }

    /// Grid-scan reference: evaluate the per-item expected error at many
    /// candidate representatives and return the smallest maximum.
    fn grid_min(rel: &ProbabilisticRelation, s: usize, e: usize, kind: MaxMetricKind) -> f64 {
        let pdfs = rel.induced_value_pdfs();
        let metric = metric_for(kind);
        let mut best = f64::INFINITY;
        for step in 0..=6000 {
            let cand = step as f64 * 0.001 * 7.0; // covers [0, 7]
            let cost = (s..=e)
                .map(|i| metric.expected_point_error(pdfs.item(i), cand))
                .fold(0.0, f64::max);
            best = best.min(cost);
        }
        best
    }

    fn envelope_at(
        rel: &ProbabilisticRelation,
        s: usize,
        e: usize,
        kind: MaxMetricKind,
        rep: f64,
    ) -> f64 {
        let pdfs = rel.induced_value_pdfs();
        let metric = metric_for(kind);
        (s..=e)
            .map(|i| metric.expected_point_error(pdfs.item(i), rep))
            .fold(0.0, f64::max)
    }

    #[test]
    fn mae_cost_is_consistent_and_optimal_up_to_grid_resolution() {
        for rel in relations() {
            let oracle = MaxErrOracle::mae(&rel);
            for s in 0..rel.n() {
                for e in s..rel.n() {
                    let sol = oracle.bucket(s, e);
                    // The reported cost is exactly the envelope at the reported
                    // representative.
                    let at_rep = envelope_at(&rel, s, e, MaxMetricKind::Mae, sol.representative);
                    assert!(
                        (sol.cost - at_rep).abs() < 1e-9,
                        "{} [{s},{e}]",
                        rel.model_name()
                    );
                    // And no grid candidate does meaningfully better.
                    let grid = grid_min(&rel, s, e, MaxMetricKind::Mae);
                    assert!(
                        sol.cost <= grid + 1e-6,
                        "{} [{s},{e}]: {} vs grid {grid}",
                        rel.model_name(),
                        sol.cost
                    );
                }
            }
        }
    }

    #[test]
    fn mare_cost_is_consistent_and_optimal_up_to_grid_resolution() {
        for rel in relations() {
            for c in [0.5, 1.0] {
                let kind = MaxMetricKind::Mare { c };
                let oracle = MaxErrOracle::mare(&rel, c);
                for s in 0..rel.n() {
                    for e in s..rel.n() {
                        let sol = oracle.bucket(s, e);
                        let at_rep = envelope_at(&rel, s, e, kind, sol.representative);
                        assert!((sol.cost - at_rep).abs() < 1e-9);
                        let grid = grid_min(&rel, s, e, kind);
                        assert!(sol.cost <= grid + 1e-6);
                    }
                }
            }
        }
    }

    #[test]
    fn deterministic_data_reduces_to_midrange() {
        // For deterministic data the optimal max-absolute-error representative
        // is the midrange and the cost is half the spread.
        let freqs = [5.0, 1.0, 2.0, 9.0, 2.0];
        let rel: ProbabilisticRelation = ValuePdfModel::deterministic(&freqs).into();
        let oracle = MaxErrOracle::mae(&rel);
        for s in 0..freqs.len() {
            for e in s..freqs.len() {
                let max = freqs[s..=e]
                    .iter()
                    .cloned()
                    .fold(f64::NEG_INFINITY, f64::max);
                let min = freqs[s..=e].iter().cloned().fold(f64::INFINITY, f64::min);
                let sol = oracle.bucket(s, e);
                assert!(
                    (sol.cost - (max - min) / 2.0).abs() < 1e-9,
                    "[{s},{e}] cost {} vs {}",
                    sol.cost,
                    (max - min) / 2.0
                );
                assert!((sol.representative - (max + min) / 2.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn minimise_max_of_lines_basic_cases() {
        // Two crossing lines: minimum of the max at their intersection.
        let (x, v) = minimise_max_of_lines(&[(1.0, 0.0), (-1.0, 4.0)], 0.0, 10.0);
        assert!((x - 2.0).abs() < 1e-12);
        assert!((v - 2.0).abs() < 1e-12);
        // Minimum clamped to the interval.
        let (x, v) = minimise_max_of_lines(&[(1.0, 0.0), (-1.0, 4.0)], 3.0, 10.0);
        assert!((x - 3.0).abs() < 1e-12);
        assert!((v - 3.0).abs() < 1e-12);
        // A dominated middle line does not affect the result.
        let (x, v) = minimise_max_of_lines(&[(1.0, 0.0), (0.0, 1.0), (-1.0, 4.0)], 0.0, 10.0);
        assert!((x - 2.0).abs() < 1e-12);
        assert!((v - 2.0).abs() < 1e-12);
        // A single flat line.
        let (_, v) = minimise_max_of_lines(&[(0.0, 3.0)], -1.0, 1.0);
        assert!((v - 3.0).abs() < 1e-12);
        // Degenerate interval.
        let (x, v) = minimise_max_of_lines(&[(2.0, 1.0)], 5.0, 5.0);
        assert_eq!(x, 5.0);
        assert!((v - 11.0).abs() < 1e-12);
    }

    #[test]
    fn max_oracle_reports_non_cumulative() {
        let rel = &relations()[0];
        let oracle = MaxErrOracle::mae(rel);
        assert!(!oracle.is_cumulative());
        assert_eq!(oracle.n(), 3);
        assert_eq!(oracle.kind(), MaxMetricKind::Mae);
    }

    #[test]
    fn singleton_bucket_cost_is_item_expected_error_minimum() {
        let rel = &relations()[2];
        let oracle = MaxErrOracle::mae(rel);
        // Item 2 has Pr[g=6] = 0.1, Pr[g=0] = 0.9: the optimal estimate
        // minimises 0.9|b| + 0.1|6-b|, optimum at b = 0 with cost 0.6.
        let sol = oracle.bucket(2, 2);
        assert!((sol.cost - 0.6).abs() < 1e-9);
        assert!(sol.representative.abs() < 1e-9);
    }
}
