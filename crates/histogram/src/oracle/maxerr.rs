//! Maximum-absolute-error and maximum-absolute-relative-error bucket-cost
//! oracles (Section 3.6 of the paper, Theorem 6).
//!
//! The bucket cost is the *maximum over items* of the per-item expected
//! error, `max_{s ≤ i ≤ e} Σ_j w_{i,j} |v_j − b̂|`, where the weights are
//! `w_{i,j} = Pr[g_i = v_j]` (MAE) or `Pr[g_i = v_j]/max(c, v_j)` (MARE).
//! Every per-item function `f_i(b̂)` is convex piecewise linear with
//! breakpoints in `V`, so their upper envelope `E(b̂) = max_i f_i(b̂)` is
//! convex as well.  Following the paper's binary-search trick over the value
//! domain we
//!
//! 1. **binary-search the value grid** for the leftmost grid minimum of the
//!    (convex) sequence `E(v_0), …, E(v_{|V|−1})` — `O(log |V|)` probes, each
//!    an `O(1)` range-max lookup in block-decomposed tables of the
//!    precomputed per-item grid errors `f_i(v_l)`; then
//! 2. minimise the envelope **exactly** on the one or two grid segments
//!    adjacent to the grid minimum (the continuous optimum of a convex
//!    function with grid breakpoints lies there), via the upper envelope of
//!    the bucket's `n_b` linear pieces.
//!
//! The batched [`BucketCostOracle::costs_ending_at`] sweep maintains the grid
//! envelope incrementally while the bucket grows leftwards, so each start
//! pays only the `O(log |V|)` bracketing search plus the final segment
//! refinement — no per-probe rescans of the bucket.

use pds_core::model::ProbabilisticRelation;
use pds_core::values::ValueDomain;

use super::{BucketCostOracle, BucketSolution};

/// Items per block in the range-max decomposition of the grid-error tables.
const BLOCK: usize = 64;

/// Which maximum-error metric the oracle evaluates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MaxMetricKind {
    /// Maximum absolute error.
    Mae,
    /// Maximum absolute relative error with the given sanity bound.
    Mare {
        /// Sanity bound.
        c: f64,
    },
}

/// Maximum-error bucket-cost oracle (MAE and MARE).
#[derive(Debug, Clone)]
pub struct MaxErrOracle {
    n: usize,
    kind: MaxMetricKind,
    domain: ValueDomain,
    /// `w_cum[i][l] = Σ_{r ≤ l} w_{i,r}` (per item, cumulative over values).
    w_cum: Vec<Vec<f64>>,
    /// `m_cum[i][l] = Σ_{r ≤ l} w_{i,r} v_r`.
    m_cum: Vec<Vec<f64>>,
    /// `Σ_r w_{i,r}` per item.
    total_w: Vec<f64>,
    /// `Σ_r w_{i,r} v_r` per item.
    total_m: Vec<f64>,
    /// `grid[i·|V| + l] = f_i(v_l)` — the per-item expected error at every
    /// grid value (row-major per item, for the incremental sweep).
    grid: Vec<f64>,
    /// The same values transposed (`grid_col[l·n + i]`), so the segment
    /// refinement filter streams items contiguously.
    grid_col: Vec<f64>,
    /// `pre[l·n + i]` = max of `f_j(v_l)` over `j` from the start of item
    /// `i`'s block through `i` (column-major per value index).
    pre: Vec<f64>,
    /// `suf[l·n + i]` = max of `f_j(v_l)` over `j` from `i` through the end
    /// of its block.
    suf: Vec<f64>,
    /// Sparse table over whole-block maxima: `sparse[(l·levels + lev)·nb + b]`
    /// = max over blocks `b .. b + 2^lev`.
    sparse: Vec<f64>,
    /// Number of blocks.
    nb: usize,
    /// Number of sparse-table levels.
    levels: usize,
}

impl MaxErrOracle {
    /// Builds the MAE oracle.
    pub fn mae(relation: &ProbabilisticRelation) -> Self {
        Self::with_kind(relation, MaxMetricKind::Mae)
    }

    /// Builds the MARE oracle with sanity bound `c > 0`.
    pub fn mare(relation: &ProbabilisticRelation, c: f64) -> Self {
        assert!(c > 0.0, "the sanity bound c must be positive");
        Self::with_kind(relation, MaxMetricKind::Mare { c })
    }

    /// Builds the oracle for an explicit metric kind.
    pub fn with_kind(relation: &ProbabilisticRelation, kind: MaxMetricKind) -> Self {
        let n = relation.n();
        let pdfs = relation.induced_value_pdfs();
        let domain = ValueDomain::from_value_pdfs(&pdfs);
        let dense = domain.dense_probabilities(&pdfs);
        let v = domain.values();
        let k = v.len();
        let weight = |value: f64| match kind {
            MaxMetricKind::Mae => 1.0,
            MaxMetricKind::Mare { c } => 1.0 / c.max(value.abs()),
        };
        let mut w_cum = vec![vec![0.0; k]; n];
        let mut m_cum = vec![vec![0.0; k]; n];
        let mut total_w = vec![0.0; n];
        let mut total_m = vec![0.0; n];
        let mut grid = vec![0.0; n * k];
        for i in 0..n {
            let mut wc = 0.0;
            let mut mc = 0.0;
            for j in 0..k {
                let w = dense[i][j] * weight(v[j]);
                wc += w;
                mc += w * v[j];
                w_cum[i][j] = wc;
                m_cum[i][j] = mc;
            }
            total_w[i] = wc;
            total_m[i] = mc;
            for l in 0..k {
                let a = 2.0 * w_cum[i][l] - wc;
                let c = mc - 2.0 * m_cum[i][l];
                grid[i * k + l] = a * v[l] + c;
            }
        }

        // Block range-max tables over items, one column per grid value: a
        // prefix/suffix max inside every block plus a sparse table over the
        // whole-block maxima give O(1) range-max queries.
        let nb = n.div_ceil(BLOCK);
        let levels = usize::BITS as usize - nb.leading_zeros() as usize;
        let mut grid_col = vec![0.0; k * n];
        for i in 0..n {
            for l in 0..k {
                grid_col[l * n + i] = grid[i * k + l];
            }
        }
        let mut pre = vec![f64::NEG_INFINITY; k * n];
        let mut suf = vec![f64::NEG_INFINITY; k * n];
        let mut sparse = vec![f64::NEG_INFINITY; k * levels * nb];
        for l in 0..k {
            let pre_col = &mut pre[l * n..(l + 1) * n];
            let suf_col = &mut suf[l * n..(l + 1) * n];
            for b in 0..nb {
                let start = b * BLOCK;
                let end = ((b + 1) * BLOCK).min(n);
                let mut acc = f64::NEG_INFINITY;
                for i in start..end {
                    acc = acc.max(grid[i * k + l]);
                    pre_col[i] = acc;
                }
                sparse[(l * levels) * nb + b] = acc;
                let mut acc = f64::NEG_INFINITY;
                for i in (start..end).rev() {
                    acc = acc.max(grid[i * k + l]);
                    suf_col[i] = acc;
                }
            }
            for lev in 1..levels {
                let half = 1usize << (lev - 1);
                for b in 0..nb {
                    let lo = sparse[(l * levels + lev - 1) * nb + b];
                    let hi = sparse[(l * levels + lev - 1) * nb + (b + half).min(nb - 1)];
                    sparse[(l * levels + lev) * nb + b] = lo.max(hi);
                }
            }
        }

        MaxErrOracle {
            n,
            kind,
            domain,
            w_cum,
            m_cum,
            total_w,
            total_m,
            grid,
            grid_col,
            pre,
            suf,
            sparse,
            nb,
            levels,
        }
    }

    /// The metric kind this oracle evaluates.
    pub fn kind(&self) -> MaxMetricKind {
        self.kind
    }

    /// The frequency value domain `V`.
    pub fn domain(&self) -> &ValueDomain {
        &self.domain
    }

    /// The per-item expected error `f_i(b̂) = Σ_j w_{i,j} |v_j − b̂|` as a
    /// linear function of `b̂` on the segment `[v_l, v_{l+1}]`, returned as
    /// `(slope, intercept)`.
    fn item_line(&self, i: usize, l: usize) -> (f64, f64) {
        let slope = 2.0 * self.w_cum[i][l] - self.total_w[i];
        let intercept = self.total_m[i] - 2.0 * self.m_cum[i][l];
        (slope, intercept)
    }

    /// `max_i f_i(v_l)` over the bucket `[s, e]` — an O(1) range-max query.
    fn envelope_at_value(&self, s: usize, e: usize, l: usize) -> f64 {
        let k = self.domain.len();
        let (bs, be) = (s / BLOCK, e / BLOCK);
        if bs == be {
            let mut m = f64::NEG_INFINITY;
            for i in s..=e {
                m = m.max(self.grid[i * k + l]);
            }
            return m;
        }
        let mut m = self.suf[l * self.n + s].max(self.pre[l * self.n + e]);
        if be > bs + 1 {
            let (lo, hi) = (bs + 1, be - 1);
            let lev = usize::BITS as usize - 1 - (hi - lo + 1).leading_zeros() as usize;
            let row = (l * self.levels + lev) * self.nb;
            m = m
                .max(self.sparse[row + lo])
                .max(self.sparse[row + hi + 1 - (1 << lev)]);
        }
        m
    }

    /// Leftmost grid argmin of the convex sequence `E(v_0) … E(v_{k−1})`,
    /// found by binary search on the sign of the forward difference.
    fn grid_argmin(&self, mut env: impl FnMut(usize) -> f64, k: usize) -> usize {
        if k == 1 {
            return 0;
        }
        // d(l) = E(v_{l+1}) − E(v_l) is sign-monotone (E is convex); find the
        // first l with d(l) ≥ 0 — the minimum sits at that l (or at k−1 when
        // E keeps decreasing).
        let (mut lo, mut hi) = (0usize, k - 1);
        while lo < hi {
            let mid = (lo + hi) / 2;
            if env(mid + 1) >= env(mid) {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        lo
    }

    /// Minimises `max_i f_i(b̂)` over `b̂ ∈ [v_l, v_{l+1}]` exactly, reusing
    /// `lines` as scratch.
    ///
    /// Before building the upper envelope, lines are filtered against the
    /// lower bound `LB = max_i min(f_i(v_l), f_i(v_{l+1}))`: the envelope is
    /// everywhere at least its own minimum, which is at least `LB`, so a line
    /// strictly below `LB` at both segment endpoints (hence, being linear,
    /// everywhere in between) can never attain the envelope on the segment.
    /// This keeps the refinement exact while the hull is built over a handful
    /// of survivors instead of the whole bucket.
    fn minimise_segment(
        &self,
        s: usize,
        e: usize,
        l: usize,
        lines: &mut Vec<(f64, f64)>,
    ) -> (f64, f64) {
        let k = self.domain.len();
        let lo = self.domain.value(l);
        let hi = self.domain.value((l + 1).min(k - 1));
        let col_l = &self.grid_col[l * self.n..][s..=e];
        let col_r = &self.grid_col[(l + 1) * self.n..][s..=e];
        let mut lb = f64::NEG_INFINITY;
        for (&fl, &fr) in col_l.iter().zip(col_r) {
            lb = lb.max(fl.min(fr));
        }
        lines.clear();
        for (i, (&fl, &fr)) in col_l.iter().zip(col_r).enumerate() {
            if fl.max(fr) >= lb {
                lines.push(self.item_line(s + i, l));
            }
        }
        minimise_max_of_lines(lines, lo, hi)
    }

    /// Exact bucket minimum given the grid argmin `a`: the continuous optimum
    /// of the convex envelope lies in `[v_{a−1}, v_{a+1}]`, so refine the one
    /// or two adjacent segments and keep the best of those and the grid point.
    fn refine_around(
        &self,
        s: usize,
        e: usize,
        a: usize,
        value_at_a: f64,
        lines: &mut Vec<(f64, f64)>,
    ) -> (f64, f64) {
        let k = self.domain.len();
        let mut best = (self.domain.value(a), value_at_a);
        let seg_lo = a.saturating_sub(1);
        let seg_hi = (a + 1).min(k - 1);
        for l in seg_lo..seg_hi {
            let (x, val) = self.minimise_segment(s, e, l, lines);
            if val < best.1 {
                best = (x, val);
            }
        }
        best
    }
}

/// Minimises the upper envelope `max_i (a_i x + c_i)` over `x ∈ [lo, hi]`,
/// returning `(argmin, min)`.  Exact: the minimum of a convex piecewise-linear
/// function over an interval is attained at an endpoint or at a breakpoint of
/// its upper envelope.
pub fn minimise_max_of_lines(lines: &[(f64, f64)], lo: f64, hi: f64) -> (f64, f64) {
    assert!(!lines.is_empty(), "at least one line is required");
    let eval = |x: f64| {
        lines
            .iter()
            .map(|&(a, c)| a * x + c)
            .fold(f64::NEG_INFINITY, f64::max)
    };
    if hi <= lo {
        return (lo, eval(lo));
    }
    // Upper envelope via the convex-hull trick: sort by slope, drop dominated
    // lines, keep the hull of lines that attain the maximum somewhere.
    let mut sorted: Vec<(f64, f64)> = lines.to_vec();
    sorted.sort_by(|x, y| x.partial_cmp(y).expect("finite lines"));
    // For equal slopes only the largest intercept matters.
    let mut dedup: Vec<(f64, f64)> = Vec::with_capacity(sorted.len());
    for (a, c) in sorted {
        match dedup.last_mut() {
            Some(last) if (last.0 - a).abs() < 1e-15 => last.1 = last.1.max(c),
            _ => dedup.push((a, c)),
        }
    }
    let intersect = |l1: (f64, f64), l2: (f64, f64)| -> f64 {
        // x where a1 x + c1 == a2 x + c2 (slopes differ).
        (l2.1 - l1.1) / (l1.0 - l2.0)
    };
    let mut hull: Vec<(f64, f64)> = Vec::with_capacity(dedup.len());
    for line in dedup {
        while hull.len() >= 2 {
            let a = hull[hull.len() - 2];
            let b = hull[hull.len() - 1];
            // `b` is unnecessary if the new line already dominates it at the
            // point where `b` overtakes `a`.
            if intersect(a, line) <= intersect(a, b) {
                hull.pop();
            } else {
                break;
            }
        }
        hull.push(line);
    }
    // Candidate minimisers: the interval endpoints and every envelope
    // breakpoint inside the interval.
    let mut best_x = lo;
    let mut best = eval(lo);
    let consider = |x: f64, best_x: &mut f64, best: &mut f64| {
        let v = eval(x);
        if v < *best {
            *best = v;
            *best_x = x;
        }
    };
    consider(hi, &mut best_x, &mut best);
    for pair in hull.windows(2) {
        let x = intersect(pair[0], pair[1]);
        if x > lo && x < hi {
            consider(x, &mut best_x, &mut best);
        }
    }
    (best_x, best)
}

impl BucketCostOracle for MaxErrOracle {
    fn n(&self) -> usize {
        self.n
    }

    fn bucket(&self, s: usize, e: usize) -> BucketSolution {
        let k = self.domain.len();
        let a = self.grid_argmin(|l| self.envelope_at_value(s, e, l), k);
        let mut lines = Vec::with_capacity(e - s + 1);
        let at_a = self.envelope_at_value(s, e, a);
        let best = if k == 1 {
            (self.domain.value(0), at_a)
        } else {
            self.refine_around(s, e, a, at_a, &mut lines)
        };
        BucketSolution {
            representative: best.0,
            cost: best.1.max(0.0),
        }
    }

    fn costs_ending_at(&self, e: usize, starts: &[usize]) -> Vec<f64> {
        let k = self.domain.len();
        let mut out = vec![0.0; starts.len()];
        if starts.is_empty() {
            return out;
        }
        // Incremental envelope sweep: grow the bucket leftwards, folding each
        // item's grid-error row into `env` so every probe of the bracketing
        // binary search is a plain array read.
        let mut env = vec![f64::NEG_INFINITY; k];
        let mut lines: Vec<(f64, f64)> = Vec::new();
        let mut next = starts.len();
        for s in (starts[0]..=e).rev() {
            let row = &self.grid[s * k..(s + 1) * k];
            for (slot, &g) in env.iter_mut().zip(row) {
                if g > *slot {
                    *slot = g;
                }
            }
            while next > 0 && starts[next - 1] == s {
                next -= 1;
                let a = self.grid_argmin(|l| env[l], k);
                let cost = if k == 1 {
                    env[0]
                } else {
                    self.refine_around(s, e, a, env[a], &mut lines).1
                };
                out[next] = cost.max(0.0);
            }
        }
        out
    }

    fn costs_starting_at(&self, s: usize, ends: &[usize]) -> Vec<f64> {
        let k = self.domain.len();
        let mut out = vec![0.0; ends.len()];
        if ends.is_empty() {
            return out;
        }
        // Prefix-direction dual of the sweep above: grow the bucket
        // rightwards from the fixed start, folding each item's grid-error row
        // into the running envelope.
        let mut env = vec![f64::NEG_INFINITY; k];
        let mut lines: Vec<(f64, f64)> = Vec::new();
        let mut next = 0usize;
        for e in s..=ends[ends.len() - 1] {
            let row = &self.grid[e * k..(e + 1) * k];
            for (slot, &g) in env.iter_mut().zip(row) {
                if g > *slot {
                    *slot = g;
                }
            }
            while next < ends.len() && ends[next] == e {
                let a = self.grid_argmin(|l| env[l], k);
                let cost = if k == 1 {
                    env[0]
                } else {
                    self.refine_around(s, e, a, env[a], &mut lines).1
                };
                out[next] = cost.max(0.0);
                next += 1;
            }
        }
        out
    }

    fn is_cumulative(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pds_core::metrics::ErrorMetric;
    use pds_core::model::{BasicModel, TuplePdfModel, ValuePdf, ValuePdfModel};

    fn relations() -> Vec<ProbabilisticRelation> {
        vec![
            BasicModel::from_pairs(3, [(0, 0.5), (1, 1.0 / 3.0), (1, 0.25), (2, 0.5)])
                .unwrap()
                .into(),
            TuplePdfModel::from_alternatives(
                3,
                [vec![(0, 0.5), (1, 1.0 / 3.0)], vec![(1, 0.25), (2, 0.5)]],
            )
            .unwrap()
            .into(),
            ValuePdfModel::from_sparse(
                5,
                [
                    (0, ValuePdf::new([(1.0, 0.5)]).unwrap()),
                    (1, ValuePdf::new([(1.0, 1.0 / 3.0), (2.5, 0.25)]).unwrap()),
                    (2, ValuePdf::new([(6.0, 0.1)]).unwrap()),
                    (3, ValuePdf::new([(4.0, 0.75), (0.5, 0.2)]).unwrap()),
                ],
            )
            .unwrap()
            .into(),
        ]
    }

    fn metric_for(kind: MaxMetricKind) -> ErrorMetric {
        match kind {
            MaxMetricKind::Mae => ErrorMetric::Mae,
            MaxMetricKind::Mare { c } => ErrorMetric::Mare { c },
        }
    }

    /// Grid-scan reference: evaluate the per-item expected error at many
    /// candidate representatives and return the smallest maximum.
    fn grid_min(rel: &ProbabilisticRelation, s: usize, e: usize, kind: MaxMetricKind) -> f64 {
        let pdfs = rel.induced_value_pdfs();
        let metric = metric_for(kind);
        let mut best = f64::INFINITY;
        for step in 0..=6000 {
            let cand = step as f64 * 0.001 * 7.0; // covers [0, 7]
            let cost = (s..=e)
                .map(|i| metric.expected_point_error(pdfs.item(i), cand))
                .fold(0.0, f64::max);
            best = best.min(cost);
        }
        best
    }

    fn envelope_at(
        rel: &ProbabilisticRelation,
        s: usize,
        e: usize,
        kind: MaxMetricKind,
        rep: f64,
    ) -> f64 {
        let pdfs = rel.induced_value_pdfs();
        let metric = metric_for(kind);
        (s..=e)
            .map(|i| metric.expected_point_error(pdfs.item(i), rep))
            .fold(0.0, f64::max)
    }

    #[test]
    fn mae_cost_is_consistent_and_optimal_up_to_grid_resolution() {
        for rel in relations() {
            let oracle = MaxErrOracle::mae(&rel);
            for s in 0..rel.n() {
                for e in s..rel.n() {
                    let sol = oracle.bucket(s, e);
                    // The reported cost is exactly the envelope at the reported
                    // representative.
                    let at_rep = envelope_at(&rel, s, e, MaxMetricKind::Mae, sol.representative);
                    assert!(
                        (sol.cost - at_rep).abs() < 1e-9,
                        "{} [{s},{e}]",
                        rel.model_name()
                    );
                    // And no grid candidate does meaningfully better.
                    let grid = grid_min(&rel, s, e, MaxMetricKind::Mae);
                    assert!(
                        sol.cost <= grid + 1e-6,
                        "{} [{s},{e}]: {} vs grid {grid}",
                        rel.model_name(),
                        sol.cost
                    );
                }
            }
        }
    }

    #[test]
    fn mare_cost_is_consistent_and_optimal_up_to_grid_resolution() {
        for rel in relations() {
            for c in [0.5, 1.0] {
                let kind = MaxMetricKind::Mare { c };
                let oracle = MaxErrOracle::mare(&rel, c);
                for s in 0..rel.n() {
                    for e in s..rel.n() {
                        let sol = oracle.bucket(s, e);
                        let at_rep = envelope_at(&rel, s, e, kind, sol.representative);
                        assert!((sol.cost - at_rep).abs() < 1e-9);
                        let grid = grid_min(&rel, s, e, kind);
                        assert!(sol.cost <= grid + 1e-6);
                    }
                }
            }
        }
    }

    #[test]
    fn batched_sweep_matches_single_bucket_queries() {
        for rel in relations() {
            for oracle in [MaxErrOracle::mae(&rel), MaxErrOracle::mare(&rel, 0.5)] {
                for e in 0..rel.n() {
                    let starts: Vec<usize> = (0..=e).collect();
                    let out = oracle.costs_ending_at(e, &starts);
                    for (s, &cost) in out.iter().enumerate() {
                        assert!(
                            (cost - oracle.bucket(s, e).cost).abs() < 1e-9,
                            "{} [{s},{e}]",
                            rel.model_name()
                        );
                    }
                    // Sparse start subsets see identical values.
                    let sparse: Vec<usize> = (0..=e).step_by(2).collect();
                    let out = oracle.costs_ending_at(e, &sparse);
                    for (j, &s) in sparse.iter().enumerate() {
                        assert!((out[j] - oracle.bucket(s, e).cost).abs() < 1e-9);
                    }
                }
            }
        }
    }

    #[test]
    fn prefix_direction_sweep_matches_single_bucket_queries() {
        for rel in relations() {
            for oracle in [MaxErrOracle::mae(&rel), MaxErrOracle::mare(&rel, 0.5)] {
                for s in 0..rel.n() {
                    let ends: Vec<usize> = (s..rel.n()).collect();
                    let out = oracle.costs_starting_at(s, &ends);
                    for (j, &e) in ends.iter().enumerate() {
                        assert!(
                            (out[j] - oracle.bucket(s, e).cost).abs() < 1e-9,
                            "{} [{s},{e}]",
                            rel.model_name()
                        );
                    }
                    let sparse: Vec<usize> = (s..rel.n()).step_by(2).collect();
                    let out = oracle.costs_starting_at(s, &sparse);
                    for (j, &e) in sparse.iter().enumerate() {
                        assert!((out[j] - oracle.bucket(s, e).cost).abs() < 1e-9);
                    }
                }
            }
        }
    }

    #[test]
    fn deterministic_data_reduces_to_midrange() {
        // For deterministic data the optimal max-absolute-error representative
        // is the midrange and the cost is half the spread.
        let freqs = [5.0, 1.0, 2.0, 9.0, 2.0];
        let rel: ProbabilisticRelation = ValuePdfModel::deterministic(&freqs).into();
        let oracle = MaxErrOracle::mae(&rel);
        for s in 0..freqs.len() {
            for e in s..freqs.len() {
                let max = freqs[s..=e]
                    .iter()
                    .cloned()
                    .fold(f64::NEG_INFINITY, f64::max);
                let min = freqs[s..=e].iter().cloned().fold(f64::INFINITY, f64::min);
                let sol = oracle.bucket(s, e);
                assert!(
                    (sol.cost - (max - min) / 2.0).abs() < 1e-9,
                    "[{s},{e}] cost {} vs {}",
                    sol.cost,
                    (max - min) / 2.0
                );
                assert!((sol.representative - (max + min) / 2.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn wide_buckets_cross_block_boundaries_consistently() {
        // A domain wider than the RMQ block size exercises the
        // suffix/prefix/sparse-table composition of the envelope probes.
        let n = 3 * BLOCK + 17;
        let freqs: Vec<f64> = (0..n).map(|i| ((i * 37) % 11) as f64).collect();
        let rel: ProbabilisticRelation = ValuePdfModel::deterministic(&freqs).into();
        let oracle = MaxErrOracle::mae(&rel);
        for (s, e) in [
            (0, n - 1),
            (3, BLOCK + 5),
            (BLOCK - 1, 2 * BLOCK),
            (BLOCK, BLOCK + 3),
            (2 * BLOCK + 1, n - 1),
        ] {
            let max = freqs[s..=e]
                .iter()
                .cloned()
                .fold(f64::NEG_INFINITY, f64::max);
            let min = freqs[s..=e].iter().cloned().fold(f64::INFINITY, f64::min);
            let sol = oracle.bucket(s, e);
            assert!(
                (sol.cost - (max - min) / 2.0).abs() < 1e-9,
                "[{s},{e}] cost {} vs {}",
                sol.cost,
                (max - min) / 2.0
            );
        }
        // The sweep agrees with single queries across block boundaries too.
        let starts: Vec<usize> = (0..n).step_by(7).collect();
        let out = oracle.costs_ending_at(n - 1, &starts);
        for (j, &s) in starts.iter().enumerate() {
            assert!((out[j] - oracle.bucket(s, n - 1).cost).abs() < 1e-9);
        }
    }

    #[test]
    fn minimise_max_of_lines_basic_cases() {
        // Two crossing lines: minimum of the max at their intersection.
        let (x, v) = minimise_max_of_lines(&[(1.0, 0.0), (-1.0, 4.0)], 0.0, 10.0);
        assert!((x - 2.0).abs() < 1e-12);
        assert!((v - 2.0).abs() < 1e-12);
        // Minimum clamped to the interval.
        let (x, v) = minimise_max_of_lines(&[(1.0, 0.0), (-1.0, 4.0)], 3.0, 10.0);
        assert!((x - 3.0).abs() < 1e-12);
        assert!((v - 3.0).abs() < 1e-12);
        // A dominated middle line does not affect the result.
        let (x, v) = minimise_max_of_lines(&[(1.0, 0.0), (0.0, 1.0), (-1.0, 4.0)], 0.0, 10.0);
        assert!((x - 2.0).abs() < 1e-12);
        assert!((v - 2.0).abs() < 1e-12);
        // A non-dominated middle line lifts the minimum to its own level.
        let (_, v) = minimise_max_of_lines(&[(-2.0, 10.0), (0.0, 6.0), (2.0, 0.0)], 0.0, 10.0);
        assert!((v - 6.0).abs() < 1e-12);
        // A single flat line.
        let (_, v) = minimise_max_of_lines(&[(0.0, 3.0)], -1.0, 1.0);
        assert!((v - 3.0).abs() < 1e-12);
        // Degenerate interval.
        let (x, v) = minimise_max_of_lines(&[(2.0, 1.0)], 5.0, 5.0);
        assert_eq!(x, 5.0);
        assert!((v - 11.0).abs() < 1e-12);
    }

    #[test]
    fn max_oracle_reports_non_cumulative() {
        let rel = &relations()[0];
        let oracle = MaxErrOracle::mae(rel);
        assert!(!oracle.is_cumulative());
        assert!(oracle.costs_monotone());
        assert_eq!(oracle.n(), 3);
        assert_eq!(oracle.kind(), MaxMetricKind::Mae);
    }

    #[test]
    fn singleton_bucket_cost_is_item_expected_error_minimum() {
        let rel = &relations()[2];
        let oracle = MaxErrOracle::mae(rel);
        // Item 2 has Pr[g=6] = 0.1, Pr[g=0] = 0.9: the optimal estimate
        // minimises 0.9|b| + 0.1|6-b|, optimum at b = 0 with cost 0.6.
        let sol = oracle.bucket(2, 2);
        assert!((sol.cost - 0.6).abs() < 1e-9);
        assert!(sol.representative.abs() < 1e-9);
    }
}
