//! Bucket-cost oracles.
//!
//! The histogram dynamic program (Section 3 of the paper) is generic: all it
//! needs is, for any candidate bucket `[s, e]`, the optimal representative
//! value `b̂` and the corresponding (expected) error contribution
//! `min_{b̂} E_W[BERR([s, e], b̂)]`.  Each error metric gets its own oracle
//! that answers these queries after a preprocessing pass over the input:
//!
//! * [`sse::SseOracle`] — sum squared error (Section 3.1, Theorem 1);
//! * [`ssre::SsreOracle`] — sum squared relative error (Section 3.2, Theorem 2);
//! * [`abs::WeightedAbsOracle`] — sum absolute (relative) error
//!   (Sections 3.3–3.4, Theorems 3 and 4);
//! * [`maxerr::MaxErrOracle`] — maximum absolute (relative) error
//!   (Section 3.6, Theorem 6).
//!
//! ## Per-oracle cost contracts
//!
//! Both dynamic programs consume oracles through the batched
//! [`BucketCostOracle::costs_ending_at`] sweep (all requested buckets share
//! the right endpoint `e`), so the contracts below are what the `oracle_cost`
//! benchmark enforces; the approximate DP's level-0 column additionally uses
//! the prefix-direction dual [`BucketCostOracle::costs_starting_at`] (fixed
//! start, growing endpoint) with the same amortised per-bucket cost for the
//! incremental oracles.  `|V|` is the size of the frequency value domain and
//! `n_b` the bucket width.
//!
//! | oracle | preprocessing | single `bucket(s, e)` | per start in a sweep |
//! |---|---|---|---|
//! | SSE (prefix arrays) | `O(n)` | `O(1)` | `O(1)` |
//! | SSE (tuple-exact)   | `O(m)` | `O(n_b)` | `O(1)` amortised |
//! | SSRE | `O(n\|V\|)` | `O(1)` | `O(1)` |
//! | SAE / SARE | `O(n\|V\|)` | `O(log \|V\|)` | `O(log \|V\|)` |
//! | MAE / MARE | `O(n\|V\|)` | `O(log \|V\|)` probes + one exact segment refinement | `O(log \|V\|)` probes amortised |
//!
//! The max-error oracle locates the optimal representative by **binary search
//! over the value domain** (the envelope of the per-item expected errors is
//! convex, Section 3.6): each probe is an `O(1)` range-max lookup in
//! block-decomposed tables, and only the one or two grid segments adjacent to
//! the bracketed grid minimum are refined exactly.  Inside a sweep the grid
//! envelope is maintained incrementally instead, so probes never rescan the
//! bucket.

pub mod abs;
pub mod maxerr;
pub mod sse;
pub mod ssre;

use pds_core::metrics::ErrorMetric;
use pds_core::model::ProbabilisticRelation;

/// The answer to a single-bucket query: the optimal representative and the
/// bucket's error under it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BucketSolution {
    /// The optimal representative value `b̂` for the bucket.
    pub representative: f64,
    /// `min_{b̂} E_W[BERR(bucket, b̂)]`.
    pub cost: f64,
}

/// A bucket-cost oracle for one error metric over one probabilistic relation.
///
/// Oracles are required to be [`Sync`]: the exact DP shards its
/// `costs_ending_at` sweeps over endpoint chunks running on the scoped
/// thread pool (`pds_core::pool`), so several worker threads query one
/// oracle concurrently through `&self`.  Every oracle in this crate is a
/// plain preprocessed-table struct, so the bound is free; an oracle needing
/// interior mutability must synchronise it internally.
pub trait BucketCostOracle: Sync {
    /// Domain size `n` of the underlying relation.
    fn n(&self) -> usize;

    /// Optimal representative and cost of the bucket spanning the inclusive
    /// item range `[s, e]` (0-based, `s <= e < n`).
    fn bucket(&self, s: usize, e: usize) -> BucketSolution;

    /// Batched sweep: costs of every bucket `[starts[k], e]` for an
    /// ascending list of start positions (`starts[k] <= e` for all `k`);
    /// `out[k] == bucket(starts[k], e).cost`.
    ///
    /// Both dynamic programs call this once per right endpoint (the exact DP
    /// with every start, the approximate DP with its thinned candidate
    /// list), so oracles with cross-item interactions (the tuple-pdf SSE
    /// oracle, the max-error envelope) override it with an incremental sweep
    /// that amortises the per-start work — see the module-level cost table.
    fn costs_ending_at(&self, e: usize, starts: &[usize]) -> Vec<f64> {
        starts.iter().map(|&s| self.bucket(s, e).cost).collect()
    }

    /// Batched prefix-direction sweep: costs of every bucket
    /// `[s, ends[k]]` for an ascending list of end positions
    /// (`ends[k] >= s` for all `k`); `out[k] == bucket(s, ends[k]).cost`.
    ///
    /// This is the column-wise dual of [`BucketCostOracle::costs_ending_at`]:
    /// the bucket grows *rightwards* from a fixed start.  The approximate DP
    /// uses it for its level-0 column (`cost(0, j)` for every endpoint `j`),
    /// so the oracles whose single-bucket query is not `O(1)` — the
    /// tuple-exact SSE oracle and the max-error envelope — override it with
    /// an incremental sweep that amortises the per-endpoint work.
    fn costs_starting_at(&self, s: usize, ends: &[usize]) -> Vec<f64> {
        ends.iter().map(|&e| self.bucket(s, e).cost).collect()
    }

    /// Whether per-bucket costs combine additively (`true`, cumulative
    /// metrics) or by maximum (`false`, max-error metrics).
    fn is_cumulative(&self) -> bool {
        true
    }

    /// Whether bucket costs are monotone under containment (growing a bucket
    /// never decreases its cost — condition (4) of Section 3.5).
    ///
    /// This holds for every metric of the form `min_{b̂}` of a sum or maximum
    /// of non-negative per-item terms, and for the exact expected per-world
    /// sample variance.  The one exception is the paper's tuple-pdf SSE
    /// prefix-array *approximation*, whose covariance estimate can dip when a
    /// tuple straddles the bucket boundary.  The approximate DP only applies
    /// its cost-based early exit when this returns `true`.
    fn costs_monotone(&self) -> bool {
        true
    }
}

/// Builds the appropriate oracle for `metric` over `relation`.
///
/// This is the convenience entry point used by `optimal_histogram`; advanced
/// callers can construct the concrete oracles directly (e.g. to choose the
/// tuple-pdf SSE mode).
pub fn oracle_for_metric(
    relation: &ProbabilisticRelation,
    metric: ErrorMetric,
) -> Box<dyn BucketCostOracle> {
    match metric {
        ErrorMetric::Sse => Box::new(sse::SseOracle::new(relation, sse::SseObjective::PaperEq5)),
        ErrorMetric::Ssre { c } => Box::new(ssre::SsreOracle::new(relation, c)),
        ErrorMetric::Sae => Box::new(abs::WeightedAbsOracle::sae(relation)),
        ErrorMetric::Sare { c } => Box::new(abs::WeightedAbsOracle::sare(relation, c)),
        ErrorMetric::Mae => Box::new(maxerr::MaxErrOracle::mae(relation)),
        ErrorMetric::Mare { c } => Box::new(maxerr::MaxErrOracle::mare(relation, c)),
    }
}

impl BucketCostOracle for Box<dyn BucketCostOracle> {
    fn n(&self) -> usize {
        self.as_ref().n()
    }

    fn bucket(&self, s: usize, e: usize) -> BucketSolution {
        self.as_ref().bucket(s, e)
    }

    fn costs_ending_at(&self, e: usize, starts: &[usize]) -> Vec<f64> {
        self.as_ref().costs_ending_at(e, starts)
    }

    fn costs_starting_at(&self, s: usize, ends: &[usize]) -> Vec<f64> {
        self.as_ref().costs_starting_at(s, ends)
    }

    fn is_cumulative(&self) -> bool {
        self.as_ref().is_cumulative()
    }

    fn costs_monotone(&self) -> bool {
        self.as_ref().costs_monotone()
    }
}
