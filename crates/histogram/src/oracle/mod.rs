//! Bucket-cost oracles.
//!
//! The histogram dynamic program (Section 3 of the paper) is generic: all it
//! needs is, for any candidate bucket `[s, e]`, the optimal representative
//! value `b̂` and the corresponding (expected) error contribution
//! `min_{b̂} E_W[BERR([s, e], b̂)]`.  Each error metric gets its own oracle
//! that answers these queries in `O(1)`–`O(n_b log |V|)` time after a
//! preprocessing pass that builds prefix-sum arrays over the input:
//!
//! * [`sse::SseOracle`] — sum squared error (Section 3.1, Theorem 1);
//! * [`ssre::SsreOracle`] — sum squared relative error (Section 3.2, Theorem 2);
//! * [`abs::WeightedAbsOracle`] — sum absolute (relative) error
//!   (Sections 3.3–3.4, Theorems 3 and 4);
//! * [`maxerr::MaxErrOracle`] — maximum absolute (relative) error
//!   (Section 3.6, Theorem 6).

pub mod abs;
pub mod maxerr;
pub mod sse;
pub mod ssre;

use pds_core::metrics::ErrorMetric;
use pds_core::model::ProbabilisticRelation;

/// The answer to a single-bucket query: the optimal representative and the
/// bucket's error under it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BucketSolution {
    /// The optimal representative value `b̂` for the bucket.
    pub representative: f64,
    /// `min_{b̂} E_W[BERR(bucket, b̂)]`.
    pub cost: f64,
}

/// A bucket-cost oracle for one error metric over one probabilistic relation.
pub trait BucketCostOracle {
    /// Domain size `n` of the underlying relation.
    fn n(&self) -> usize;

    /// Optimal representative and cost of the bucket spanning the inclusive
    /// item range `[s, e]` (0-based, `s <= e < n`).
    fn bucket(&self, s: usize, e: usize) -> BucketSolution;

    /// Costs of every bucket ending at `e`: `out[s] = bucket(s, e).cost` for
    /// `s = 0..=e` (entries beyond `e` are left untouched).
    ///
    /// The dynamic program calls this once per right endpoint; oracles whose
    /// cost has cross-item interactions (the exact tuple-pdf SSE oracle)
    /// override it with an incremental sweep that amortises the work.
    fn costs_ending_at(&self, e: usize, out: &mut Vec<f64>) {
        out.resize(e + 1, 0.0);
        for (s, slot) in out.iter_mut().enumerate() {
            *slot = self.bucket(s, e).cost;
        }
    }

    /// Whether per-bucket costs combine additively (`true`, cumulative
    /// metrics) or by maximum (`false`, max-error metrics).
    fn is_cumulative(&self) -> bool {
        true
    }
}

/// Builds the appropriate oracle for `metric` over `relation`.
///
/// This is the convenience entry point used by `optimal_histogram`; advanced
/// callers can construct the concrete oracles directly (e.g. to choose the
/// tuple-pdf SSE mode).
pub fn oracle_for_metric(
    relation: &ProbabilisticRelation,
    metric: ErrorMetric,
) -> Box<dyn BucketCostOracle> {
    match metric {
        ErrorMetric::Sse => Box::new(sse::SseOracle::new(relation, sse::SseObjective::PaperEq5)),
        ErrorMetric::Ssre { c } => Box::new(ssre::SsreOracle::new(relation, c)),
        ErrorMetric::Sae => Box::new(abs::WeightedAbsOracle::sae(relation)),
        ErrorMetric::Sare { c } => Box::new(abs::WeightedAbsOracle::sare(relation, c)),
        ErrorMetric::Mae => Box::new(maxerr::MaxErrOracle::mae(relation)),
        ErrorMetric::Mare { c } => Box::new(maxerr::MaxErrOracle::mare(relation, c)),
    }
}

impl BucketCostOracle for Box<dyn BucketCostOracle> {
    fn n(&self) -> usize {
        self.as_ref().n()
    }

    fn bucket(&self, s: usize, e: usize) -> BucketSolution {
        self.as_ref().bucket(s, e)
    }

    fn costs_ending_at(&self, e: usize, out: &mut Vec<f64>) {
        self.as_ref().costs_ending_at(e, out)
    }

    fn is_cumulative(&self) -> bool {
        self.as_ref().is_cumulative()
    }
}
