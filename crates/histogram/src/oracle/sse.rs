//! Sum-squared-error bucket-cost oracle (Section 3.1 of the paper).
//!
//! Two flavours of the single-bucket SSE objective are supported (see
//! DESIGN.md, "Faithfulness notes"):
//!
//! * [`SseObjective::PaperEq5`] — the paper's equation (5):
//!   `Σ_i E[g_i²] − E[(Σ_i g_i)²]/n_b`, i.e. `n_b` times the expected
//!   *per-world* sample variance of the bucket.  For the tuple-pdf model this
//!   requires the within-bucket covariance of item frequencies; the paper's
//!   `A`/`B`/`C` prefix arrays give it in `O(1)` per bucket (exact for the
//!   basic model, an approximation when a tuple's alternatives straddle a
//!   bucket boundary), and [`TupleSseMode::Exact`] resolves straddling tuples
//!   exactly with an incremental sweep.
//! * [`SseObjective::FixedRepresentative`] — the literal Section 2.3
//!   objective `min_{b̂} E_W[Σ_i (g_i − b̂)²]`, which only needs per-item
//!   moments: `Σ_i E[g_i²] − (Σ_i E[g_i])²/n_b`.
//!
//! In both cases the optimal representative is the bucket's mean expected
//! frequency `b̄ = Σ_i E[g_i]/n_b` (Fact 1).

use pds_core::model::ProbabilisticRelation;
use pds_core::moments::item_moments;

use super::{BucketCostOracle, BucketSolution};

/// Which single-bucket SSE objective the oracle evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SseObjective {
    /// `min_{b̂} E_W[Σ (g_i − b̂)²]` with a single fixed representative.
    FixedRepresentative,
    /// The paper's equation (5): `Σ E[g_i²] − E[(Σ g_i)²]/n_b`.
    PaperEq5,
}

/// How the tuple-pdf covariance term of [`SseObjective::PaperEq5`] is
/// computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TupleSseMode {
    /// The paper's `B[e]`/`C[e]` prefix arrays: `O(1)` per bucket, exact for
    /// the basic model, approximate when tuple alternatives straddle a bucket
    /// boundary.
    PrefixArrays,
    /// Exact covariance via an incremental sweep over the tuples overlapping
    /// the bucket (`O(m)` amortised per right endpoint).
    Exact,
}

#[derive(Debug, Clone)]
struct TupleArrays {
    mode: TupleSseMode,
    /// `B[e+1] = Σ_t Pr[t ≤ e]` (1-indexed prefix).
    prefix_b: Vec<f64>,
    /// `C[e+1] = Σ_t Pr[t ≤ e]²` (1-indexed prefix).
    prefix_c: Vec<f64>,
    /// For every item, the `(tuple index, probability)` pairs mentioning it.
    by_item: Vec<Vec<(u32, f64)>>,
    /// Number of tuples.
    tuple_count: usize,
}

/// Sum-squared-error bucket-cost oracle.
#[derive(Debug, Clone)]
pub struct SseOracle {
    n: usize,
    objective: SseObjective,
    /// `prefix_mean[e+1] = Σ_{i ≤ e} E[g_i]`.
    prefix_mean: Vec<f64>,
    /// `prefix_ex2[e+1] = Σ_{i ≤ e} E[g_i²]` (the paper's array `A`).
    prefix_ex2: Vec<f64>,
    /// `prefix_var[e+1] = Σ_{i ≤ e} Var[g_i]` — valid for the per-item
    /// independent models (basic, value pdf).
    prefix_var: Vec<f64>,
    /// Tuple-pdf specific machinery, present only when the relation is a
    /// genuine tuple-pdf input and the objective is `PaperEq5`.
    tuple: Option<TupleArrays>,
}

impl SseOracle {
    /// Builds the oracle with the default tuple-pdf mode
    /// ([`TupleSseMode::PrefixArrays`], the paper's formulation).
    pub fn new(relation: &ProbabilisticRelation, objective: SseObjective) -> Self {
        Self::with_tuple_mode(relation, objective, TupleSseMode::PrefixArrays)
    }

    /// Builds the oracle choosing how tuple-pdf covariances are handled.
    pub fn with_tuple_mode(
        relation: &ProbabilisticRelation,
        objective: SseObjective,
        mode: TupleSseMode,
    ) -> Self {
        let n = relation.n();
        let moments = item_moments(relation);
        let mut prefix_mean = vec![0.0; n + 1];
        let mut prefix_ex2 = vec![0.0; n + 1];
        let mut prefix_var = vec![0.0; n + 1];
        for i in 0..n {
            prefix_mean[i + 1] = prefix_mean[i] + moments[i].mean;
            prefix_ex2[i + 1] = prefix_ex2[i] + moments[i].second_moment;
            prefix_var[i + 1] = prefix_var[i] + moments[i].variance;
        }

        let tuple = match (objective, relation) {
            (SseObjective::PaperEq5, ProbabilisticRelation::TuplePdf(m))
                if !relation.items_independent() =>
            {
                // Pr[t ≤ e] accumulated item by item.
                let mut prefix_b = vec![0.0; n + 1];
                let mut prefix_c = vec![0.0; n + 1];
                let mut cum_per_tuple = vec![0.0; m.tuple_count()];
                let by_item = m.tuple_probabilities_by_item();
                for i in 0..n {
                    let mut b = prefix_b[i];
                    let mut c = prefix_c[i];
                    for &(t, p) in &by_item[i] {
                        let old = cum_per_tuple[t];
                        let new = old + p;
                        b += p;
                        c += new * new - old * old;
                        cum_per_tuple[t] = new;
                    }
                    prefix_b[i + 1] = b;
                    prefix_c[i + 1] = c;
                }
                Some(TupleArrays {
                    mode,
                    prefix_b,
                    prefix_c,
                    by_item: by_item
                        .into_iter()
                        .map(|v| v.into_iter().map(|(t, p)| (t as u32, p)).collect())
                        .collect(),
                    tuple_count: m.tuple_count(),
                })
            }
            _ => None,
        };

        SseOracle {
            n,
            objective,
            prefix_mean,
            prefix_ex2,
            prefix_var,
            tuple,
        }
    }

    /// The objective this oracle evaluates.
    pub fn objective(&self) -> SseObjective {
        self.objective
    }

    fn mean_sum(&self, s: usize, e: usize) -> f64 {
        self.prefix_mean[e + 1] - self.prefix_mean[s]
    }

    fn cost_with_sum_q2(&self, s: usize, e: usize, sum_q2: Option<f64>) -> f64 {
        let nb = (e - s + 1) as f64;
        let ex2 = self.prefix_ex2[e + 1] - self.prefix_ex2[s];
        let mean = self.mean_sum(s, e);
        let cost = match self.objective {
            SseObjective::FixedRepresentative => ex2 - mean * mean / nb,
            SseObjective::PaperEq5 => {
                // E[(Σ g)²] = (E[Σ g])² + Var[Σ g].
                let var_sum = match (&self.tuple, sum_q2) {
                    (Some(t), Some(q2)) => {
                        let bd = t.prefix_b[e + 1] - t.prefix_b[s];
                        bd - q2
                    }
                    (Some(t), None) => {
                        // Paper's prefix-array formula: Σ q_t² ≈ C[e] − C[s−1].
                        let bd = t.prefix_b[e + 1] - t.prefix_b[s];
                        let cd = t.prefix_c[e + 1] - t.prefix_c[s];
                        bd - cd
                    }
                    (None, _) => self.prefix_var[e + 1] - self.prefix_var[s],
                };
                ex2 - (mean * mean + var_sum) / nb
            }
        };
        cost.max(0.0)
    }

    fn exact_sum_q2(&self, s: usize, e: usize) -> Option<f64> {
        let tuple = self.tuple.as_ref()?;
        if tuple.mode != TupleSseMode::Exact {
            return None;
        }
        let mut q = std::collections::HashMap::new();
        for i in s..=e {
            for &(t, p) in &tuple.by_item[i] {
                *q.entry(t).or_insert(0.0) += p;
            }
        }
        Some(q.values().map(|&v: &f64| v * v).sum())
    }
}

impl BucketCostOracle for SseOracle {
    fn n(&self) -> usize {
        self.n
    }

    fn bucket(&self, s: usize, e: usize) -> BucketSolution {
        let nb = (e - s + 1) as f64;
        let representative = self.mean_sum(s, e) / nb;
        let cost = self.cost_with_sum_q2(s, e, self.exact_sum_q2(s, e));
        BucketSolution {
            representative,
            cost,
        }
    }

    fn costs_ending_at(&self, e: usize, starts: &[usize]) -> Vec<f64> {
        match &self.tuple {
            Some(t) if t.mode == TupleSseMode::Exact => {
                // Incremental sweep: grow the bucket leftwards from [e, e]
                // down to the smallest requested start, maintaining Σ_t q_t²
                // exactly and emitting a cost at every requested start.
                let mut out = vec![0.0; starts.len()];
                if starts.is_empty() {
                    return out;
                }
                let mut q = vec![0.0f64; t.tuple_count];
                let mut touched: Vec<u32> = Vec::new();
                let mut sum_q2 = 0.0;
                let mut next = starts.len();
                for s in (starts[0]..=e).rev() {
                    for &(tid, p) in &t.by_item[s] {
                        let old = q[tid as usize];
                        if old == 0.0 {
                            touched.push(tid);
                        }
                        let new = old + p;
                        sum_q2 += new * new - old * old;
                        q[tid as usize] = new;
                    }
                    while next > 0 && starts[next - 1] == s {
                        next -= 1;
                        out[next] = self.cost_with_sum_q2(s, e, Some(sum_q2));
                    }
                }
                for tid in touched {
                    q[tid as usize] = 0.0;
                }
                out
            }
            _ => starts
                .iter()
                .map(|&s| self.cost_with_sum_q2(s, e, None))
                .collect(),
        }
    }

    fn costs_starting_at(&self, s: usize, ends: &[usize]) -> Vec<f64> {
        match &self.tuple {
            Some(t) if t.mode == TupleSseMode::Exact => {
                // Prefix-direction dual of the sweep above: grow the bucket
                // rightwards from [s, s] up to the largest requested end,
                // maintaining Σ_t q_t² incrementally.
                let mut out = vec![0.0; ends.len()];
                if ends.is_empty() {
                    return out;
                }
                let mut q = vec![0.0f64; t.tuple_count];
                let mut touched: Vec<u32> = Vec::new();
                let mut sum_q2 = 0.0;
                let mut next = 0usize;
                for e in s..=ends[ends.len() - 1] {
                    for &(tid, p) in &t.by_item[e] {
                        let old = q[tid as usize];
                        if old == 0.0 {
                            touched.push(tid);
                        }
                        let new = old + p;
                        sum_q2 += new * new - old * old;
                        q[tid as usize] = new;
                    }
                    while next < ends.len() && ends[next] == e {
                        out[next] = self.cost_with_sum_q2(s, e, Some(sum_q2));
                        next += 1;
                    }
                }
                for tid in touched {
                    q[tid as usize] = 0.0;
                }
                out
            }
            _ => ends
                .iter()
                .map(|&e| self.cost_with_sum_q2(s, e, None))
                .collect(),
        }
    }

    fn costs_monotone(&self) -> bool {
        // The prefix-array covariance approximation for straddling tuples is
        // the only mode that can violate containment monotonicity.
        self.tuple
            .as_ref()
            .is_none_or(|t| t.mode == TupleSseMode::Exact)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pds_core::model::{BasicModel, TuplePdfModel, ValuePdf, ValuePdfModel};
    use pds_core::worlds::PossibleWorlds;

    fn tuple_example() -> ProbabilisticRelation {
        TuplePdfModel::from_alternatives(
            3,
            [vec![(0, 0.5), (1, 1.0 / 3.0)], vec![(1, 0.25), (2, 0.5)]],
        )
        .unwrap()
        .into()
    }

    fn basic_example() -> ProbabilisticRelation {
        BasicModel::from_pairs(3, [(0, 0.5), (1, 1.0 / 3.0), (1, 0.25), (2, 0.5)])
            .unwrap()
            .into()
    }

    fn value_example() -> ProbabilisticRelation {
        ValuePdfModel::from_sparse(
            4,
            [
                (0, ValuePdf::new([(1.0, 0.5)]).unwrap()),
                (1, ValuePdf::new([(1.0, 1.0 / 3.0), (2.0, 0.25)]).unwrap()),
                (2, ValuePdf::new([(3.0, 0.5)]).unwrap()),
            ],
        )
        .unwrap()
        .into()
    }

    /// The paper's worked example (Section 3.1): the SSE of the bucket
    /// spanning the whole 3-item domain of the tuple-pdf input is
    /// 252/144 − (1/3)·136/48 = 29/36.
    #[test]
    fn paper_worked_example_bucket_cost() {
        let rel = tuple_example();
        for mode in [TupleSseMode::PrefixArrays, TupleSseMode::Exact] {
            let oracle = SseOracle::with_tuple_mode(&rel, SseObjective::PaperEq5, mode);
            let sol = oracle.bucket(0, 2);
            assert!(
                (sol.cost - 29.0 / 36.0).abs() < 1e-12,
                "mode {mode:?}: cost {}",
                sol.cost
            );
            // Representative is the bucket mean (5/6 + 3/4)/3 = 19/36.
            assert!((sol.representative - 19.0 / 36.0).abs() < 1e-12);
        }
    }

    #[test]
    fn paper_eq5_matches_expected_sample_variance_by_brute_force() {
        for rel in [basic_example(), tuple_example(), value_example()] {
            let worlds = PossibleWorlds::enumerate(&rel).unwrap();
            let oracle =
                SseOracle::with_tuple_mode(&rel, SseObjective::PaperEq5, TupleSseMode::Exact);
            for s in 0..rel.n() {
                for e in s..rel.n() {
                    let nb = (e - s + 1) as f64;
                    let brute = worlds.expectation(|w| {
                        let mean: f64 = w[s..=e].iter().sum::<f64>() / nb;
                        w[s..=e].iter().map(|&g| (g - mean) * (g - mean)).sum()
                    });
                    let cost = oracle.bucket(s, e).cost;
                    assert!(
                        (cost - brute).abs() < 1e-9,
                        "{} bucket [{s},{e}]: {cost} vs {brute}",
                        rel.model_name()
                    );
                }
            }
        }
    }

    #[test]
    fn fixed_representative_matches_brute_force_and_is_minimal() {
        for rel in [basic_example(), tuple_example(), value_example()] {
            let worlds = PossibleWorlds::enumerate(&rel).unwrap();
            let oracle = SseOracle::new(&rel, SseObjective::FixedRepresentative);
            for s in 0..rel.n() {
                for e in s..rel.n() {
                    let sol = oracle.bucket(s, e);
                    let cost_at = |rep: f64| {
                        worlds
                            .expectation(|w| w[s..=e].iter().map(|&g| (g - rep) * (g - rep)).sum())
                    };
                    assert!((sol.cost - cost_at(sol.representative)).abs() < 1e-9);
                    // Perturbing the representative can only increase the cost.
                    assert!(cost_at(sol.representative + 0.05) >= sol.cost - 1e-12);
                    assert!(cost_at(sol.representative - 0.05) >= sol.cost - 1e-12);
                }
            }
        }
    }

    #[test]
    fn fixed_rep_cost_upper_bounds_eq5_cost() {
        // E[min over worlds] <= min over fixed representative.
        for rel in [basic_example(), tuple_example(), value_example()] {
            let eq5 = SseOracle::with_tuple_mode(&rel, SseObjective::PaperEq5, TupleSseMode::Exact);
            let fixed = SseOracle::new(&rel, SseObjective::FixedRepresentative);
            for s in 0..rel.n() {
                for e in s..rel.n() {
                    assert!(fixed.bucket(s, e).cost >= eq5.bucket(s, e).cost - 1e-12);
                }
            }
        }
    }

    #[test]
    fn prefix_arrays_are_exact_for_basic_model() {
        // In the basic model every tuple mentions a single item, so the
        // paper's B/C arrays compute the covariance term exactly.
        let rel = basic_example();
        let worlds = PossibleWorlds::enumerate(&rel).unwrap();
        let oracle = SseOracle::new(&rel, SseObjective::PaperEq5);
        for s in 0..rel.n() {
            for e in s..rel.n() {
                let nb = (e - s + 1) as f64;
                let brute = worlds.expectation(|w| {
                    let mean: f64 = w[s..=e].iter().sum::<f64>() / nb;
                    w[s..=e].iter().map(|&g| (g - mean) * (g - mean)).sum()
                });
                assert!((oracle.bucket(s, e).cost - brute).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn prefix_arrays_approximate_straddling_tuples() {
        // Bucket [1, 2] of the tuple-pdf example: tuple 1's alternatives
        // straddle the left bucket boundary, so the prefix-array formula
        // deviates from the exact covariance (documented approximation).
        let rel = tuple_example();
        let exact = SseOracle::with_tuple_mode(&rel, SseObjective::PaperEq5, TupleSseMode::Exact);
        let approx =
            SseOracle::with_tuple_mode(&rel, SseObjective::PaperEq5, TupleSseMode::PrefixArrays);
        let worlds = PossibleWorlds::enumerate(&rel).unwrap();
        let brute = worlds.expectation(|w| {
            let mean: f64 = w[1..=2].iter().sum::<f64>() / 2.0;
            w[1..=2].iter().map(|&g| (g - mean) * (g - mean)).sum()
        });
        assert!((exact.bucket(1, 2).cost - brute).abs() < 1e-9);
        assert!((approx.bucket(1, 2).cost - brute).abs() > 1e-6);
    }

    #[test]
    fn costs_ending_at_agrees_with_single_bucket_queries() {
        for rel in [basic_example(), tuple_example(), value_example()] {
            for (objective, mode) in [
                (SseObjective::PaperEq5, TupleSseMode::Exact),
                (SseObjective::PaperEq5, TupleSseMode::PrefixArrays),
                (
                    SseObjective::FixedRepresentative,
                    TupleSseMode::PrefixArrays,
                ),
            ] {
                let oracle = SseOracle::with_tuple_mode(&rel, objective, mode);
                for e in 0..rel.n() {
                    let starts: Vec<usize> = (0..=e).collect();
                    let out = oracle.costs_ending_at(e, &starts);
                    for (s, &cost) in out.iter().enumerate() {
                        assert!(
                            (cost - oracle.bucket(s, e).cost).abs() < 1e-12,
                            "{objective:?} {mode:?} [{s},{e}]"
                        );
                    }
                    // A sparse subset of starts is answered identically.
                    let sparse: Vec<usize> = (0..=e).step_by(2).collect();
                    let out = oracle.costs_ending_at(e, &sparse);
                    for (k, &s) in sparse.iter().enumerate() {
                        assert!((out[k] - oracle.bucket(s, e).cost).abs() < 1e-12);
                    }
                }
            }
        }
    }

    #[test]
    fn costs_starting_at_agrees_with_single_bucket_queries() {
        for rel in [basic_example(), tuple_example(), value_example()] {
            for (objective, mode) in [
                (SseObjective::PaperEq5, TupleSseMode::Exact),
                (SseObjective::PaperEq5, TupleSseMode::PrefixArrays),
            ] {
                let oracle = SseOracle::with_tuple_mode(&rel, objective, mode);
                for s in 0..rel.n() {
                    let ends: Vec<usize> = (s..rel.n()).collect();
                    let out = oracle.costs_starting_at(s, &ends);
                    for (k, &e) in ends.iter().enumerate() {
                        assert!(
                            (out[k] - oracle.bucket(s, e).cost).abs() < 1e-12,
                            "{objective:?} {mode:?} [{s},{e}]"
                        );
                    }
                    // A sparse subset of ends is answered identically.
                    let sparse: Vec<usize> = (s..rel.n()).step_by(2).collect();
                    let out = oracle.costs_starting_at(s, &sparse);
                    for (k, &e) in sparse.iter().enumerate() {
                        assert!((out[k] - oracle.bucket(s, e).cost).abs() < 1e-12);
                    }
                }
            }
        }
    }

    #[test]
    fn deterministic_data_reduces_to_classic_v_optimal_cost() {
        let freqs = [2.0, 2.0, 0.0, 2.0, 3.0, 5.0, 4.0, 4.0];
        let rel: ProbabilisticRelation = ValuePdfModel::deterministic(&freqs).into();
        for objective in [SseObjective::FixedRepresentative, SseObjective::PaperEq5] {
            let oracle = SseOracle::new(&rel, objective);
            for s in 0..freqs.len() {
                for e in s..freqs.len() {
                    let nb = (e - s + 1) as f64;
                    let mean: f64 = freqs[s..=e].iter().sum::<f64>() / nb;
                    let classic: f64 = freqs[s..=e].iter().map(|&g| (g - mean) * (g - mean)).sum();
                    assert!((oracle.bucket(s, e).cost - classic).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn singleton_buckets_of_deterministic_data_cost_zero() {
        let rel: ProbabilisticRelation = ValuePdfModel::deterministic(&[1.0, 4.0, 2.0]).into();
        let oracle = SseOracle::new(&rel, SseObjective::PaperEq5);
        for i in 0..3 {
            assert_eq!(oracle.bucket(i, i).cost, 0.0);
        }
    }
}
