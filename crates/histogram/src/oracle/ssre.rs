//! Sum-squared-relative-error bucket-cost oracle (Section 3.2 of the paper).
//!
//! The expected bucket cost for a representative `b̂` is
//! `Σ_{i∈b} Σ_{v_j∈V} Pr[g_i = v_j] (v_j − b̂)² w(v_j)` with the relative
//! weight `w(x) = 1/max(c, |x|)²`.  This is a quadratic in `b̂`; the optimal
//! representative is the weight-weighted mean and the optimal cost follows
//! from three per-item prefix arrays `X`, `Y`, `Z` (Theorem 2), so any bucket
//! is answered in `O(1)`.
//!
//! For the tuple-pdf model the cost depends only on the per-item marginal
//! (induced) value pdfs, so the very same oracle applies after the
//! `O(m |V|)` induced-pdf conversion.

use pds_core::model::ProbabilisticRelation;

use super::{BucketCostOracle, BucketSolution};

/// Sum-squared-relative-error bucket-cost oracle.
#[derive(Debug, Clone)]
pub struct SsreOracle {
    n: usize,
    c: f64,
    /// `X[e+1] = Σ_{i ≤ e} Σ_j Pr[g_i=v_j] v_j² w(v_j)`.
    x: Vec<f64>,
    /// `Y[e+1] = Σ_{i ≤ e} Σ_j Pr[g_i=v_j] v_j w(v_j)`.
    y: Vec<f64>,
    /// `Z[e+1] = Σ_{i ≤ e} Σ_j Pr[g_i=v_j] w(v_j)` (including the implicit
    /// zero-frequency mass, whose weight is `1/c²`).
    z: Vec<f64>,
}

impl SsreOracle {
    /// Builds the oracle for sanity bound `c > 0`.
    pub fn new(relation: &ProbabilisticRelation, c: f64) -> Self {
        assert!(c > 0.0, "the sanity bound c must be positive");
        let n = relation.n();
        let pdfs = relation.induced_value_pdfs();
        let weight = |v: f64| 1.0 / c.max(v.abs()).powi(2);
        let mut x = vec![0.0; n + 1];
        let mut y = vec![0.0; n + 1];
        let mut z = vec![0.0; n + 1];
        for i in 0..n {
            let full = pdfs.item(i).with_explicit_zero();
            let mut xi = 0.0;
            let mut yi = 0.0;
            let mut zi = 0.0;
            for &(v, p) in full.entries() {
                let w = weight(v);
                xi += p * v * v * w;
                yi += p * v * w;
                zi += p * w;
            }
            x[i + 1] = x[i] + xi;
            y[i + 1] = y[i] + yi;
            z[i + 1] = z[i] + zi;
        }
        SsreOracle { n, c, x, y, z }
    }

    /// The sanity bound.
    pub fn sanity_bound(&self) -> f64 {
        self.c
    }
}

impl BucketCostOracle for SsreOracle {
    fn n(&self) -> usize {
        self.n
    }

    fn bucket(&self, s: usize, e: usize) -> BucketSolution {
        let xd = self.x[e + 1] - self.x[s];
        let yd = self.y[e + 1] - self.y[s];
        let zd = self.z[e + 1] - self.z[s];
        // zd > 0 always: every item contributes at least its zero-frequency
        // mass with weight 1/c².
        let representative = if zd > 0.0 { yd / zd } else { 0.0 };
        let cost = if zd > 0.0 { xd - yd * yd / zd } else { xd };
        BucketSolution {
            representative,
            cost: cost.max(0.0),
        }
    }

    fn costs_ending_at(&self, e: usize, starts: &[usize]) -> Vec<f64> {
        // The endpoint terms are shared by every bucket of the sweep; each
        // start is then three subtractions and a division — O(1) per start.
        let (xe, ye, ze) = (self.x[e + 1], self.y[e + 1], self.z[e + 1]);
        starts
            .iter()
            .map(|&s| {
                let (xd, yd, zd) = (xe - self.x[s], ye - self.y[s], ze - self.z[s]);
                let cost = if zd > 0.0 { xd - yd * yd / zd } else { xd };
                cost.max(0.0)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pds_core::model::{BasicModel, TuplePdfModel, ValuePdf, ValuePdfModel};
    use pds_core::worlds::PossibleWorlds;

    fn relations() -> Vec<ProbabilisticRelation> {
        vec![
            BasicModel::from_pairs(3, [(0, 0.5), (1, 1.0 / 3.0), (1, 0.25), (2, 0.5)])
                .unwrap()
                .into(),
            TuplePdfModel::from_alternatives(
                3,
                [vec![(0, 0.5), (1, 1.0 / 3.0)], vec![(1, 0.25), (2, 0.5)]],
            )
            .unwrap()
            .into(),
            ValuePdfModel::from_sparse(
                4,
                [
                    (0, ValuePdf::new([(1.0, 0.5)]).unwrap()),
                    (1, ValuePdf::new([(1.0, 1.0 / 3.0), (2.0, 0.25)]).unwrap()),
                    (3, ValuePdf::new([(4.0, 0.75)]).unwrap()),
                ],
            )
            .unwrap()
            .into(),
        ]
    }

    fn brute_force_cost(worlds: &PossibleWorlds, s: usize, e: usize, c: f64, rep: f64) -> f64 {
        worlds.expectation(|w| {
            w[s..=e]
                .iter()
                .map(|&g| {
                    let d = c.max(g.abs());
                    (g - rep) * (g - rep) / (d * d)
                })
                .sum()
        })
    }

    #[test]
    fn oracle_cost_matches_brute_force_at_its_representative() {
        for rel in relations() {
            let worlds = PossibleWorlds::enumerate(&rel).unwrap();
            for c in [0.5, 1.0, 2.0] {
                let oracle = SsreOracle::new(&rel, c);
                for s in 0..rel.n() {
                    for e in s..rel.n() {
                        let sol = oracle.bucket(s, e);
                        let brute = brute_force_cost(&worlds, s, e, c, sol.representative);
                        assert!(
                            (sol.cost - brute).abs() < 1e-9,
                            "{} c={c} [{s},{e}]: {} vs {brute}",
                            rel.model_name(),
                            sol.cost
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn representative_is_a_minimiser() {
        for rel in relations() {
            let worlds = PossibleWorlds::enumerate(&rel).unwrap();
            let oracle = SsreOracle::new(&rel, 0.5);
            for s in 0..rel.n() {
                for e in s..rel.n() {
                    let sol = oracle.bucket(s, e);
                    for delta in [-0.1, -0.01, 0.01, 0.1] {
                        let perturbed =
                            brute_force_cost(&worlds, s, e, 0.5, sol.representative + delta);
                        assert!(perturbed >= sol.cost - 1e-9);
                    }
                }
            }
        }
    }

    #[test]
    fn deterministic_data_reduces_to_classic_ssre() {
        let freqs = [2.0, 0.0, 4.0, 4.0, 1.0];
        let rel: ProbabilisticRelation = ValuePdfModel::deterministic(&freqs).into();
        let c = 1.0;
        let oracle = SsreOracle::new(&rel, c);
        for s in 0..freqs.len() {
            for e in s..freqs.len() {
                let sol = oracle.bucket(s, e);
                // Classic weighted least squares on the deterministic values.
                let w: Vec<f64> = freqs[s..=e]
                    .iter()
                    .map(|&g| 1.0 / c.max(g).powi(2))
                    .collect();
                let rep: f64 = freqs[s..=e]
                    .iter()
                    .zip(&w)
                    .map(|(&g, &wi)| g * wi)
                    .sum::<f64>()
                    / w.iter().sum::<f64>();
                let cost: f64 = freqs[s..=e]
                    .iter()
                    .zip(&w)
                    .map(|(&g, &wi)| wi * (g - rep) * (g - rep))
                    .sum();
                assert!((sol.representative - rep).abs() < 1e-9);
                assert!((sol.cost - cost).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn larger_sanity_bound_shrinks_cost() {
        // Increasing c reduces every weight, hence the optimal cost.
        let rel = &relations()[0];
        let small = SsreOracle::new(rel, 0.5);
        let large = SsreOracle::new(rel, 2.0);
        for s in 0..rel.n() {
            for e in s..rel.n() {
                assert!(large.bucket(s, e).cost <= small.bucket(s, e).cost + 1e-12);
            }
        }
    }

    #[test]
    #[should_panic(expected = "sanity bound")]
    fn zero_sanity_bound_panics() {
        let rel = &relations()[0];
        let _ = SsreOracle::new(rel, 0.0);
    }

    #[test]
    fn singleton_deterministic_bucket_costs_zero() {
        let rel: ProbabilisticRelation = ValuePdfModel::deterministic(&[3.0, 7.0]).into();
        let oracle = SsreOracle::new(&rel, 1.0);
        assert!(oracle.bucket(0, 0).cost.abs() < 1e-12);
        assert!(oracle.bucket(1, 1).cost.abs() < 1e-12);
        assert!(oracle.bucket(0, 1).cost > 0.0);
    }
}
