//! `(1 + ε)`-approximate histogram construction (Section 3.5 of the paper,
//! Theorem 5), following the approach of Guha, Koudas and Shim.
//!
//! The exact dynamic program spends `Ω(B n²)` bucket-cost evaluations.  All
//! the error measures considered satisfy the conditions listed in the paper
//! (interval-locality, additivity, `O(1)`/`O(log |V|)` single-bucket queries,
//! monotonicity, polynomially-bounded totals), so the candidate split points
//! of the recurrence can be thinned: for every budget level we keep only
//! split positions whose prefix error grows by a factor of `(1 + δ)`.
//! Because prefix errors are non-decreasing in the prefix length, restricting
//! the minimisation to these `O((B/ε) log(total error))` break positions
//! loses at most a factor `(1 + δ)` per level; with
//! `δ = (1 + ε)^{1/B} − 1` the compounded loss is exactly `(1 + ε)`.
//!
//! On top of the candidate thinning, this implementation batches every
//! oracle access through [`BucketCostOracle::costs_ending_at`] and cuts the
//! evaluation count further with three measures (all visible in
//! [`ApproxStats`]):
//!
//! * **seeded upper bound** — each cell starts from the previous budget
//!   level's solution for the same prefix (a histogram with fewer buckets is
//!   always feasible), so pruning has a real bound before the first oracle
//!   call;
//! * **bisected cost window** — for containment-monotone oracles bucket
//!   costs are non-increasing along the (ascending) candidate list, so the
//!   candidates whose final-bucket cost alone reaches the seeded bound form
//!   a prefix of the list.  One binary search over the cached cost window
//!   dismisses that prefix wholesale (replacing the old linear plateau
//!   walk), the surviving suffix is completed with a single batched sweep,
//!   and the minimisation runs as a tight loop over the warm window with no
//!   per-candidate cache probes or exit tests;
//! * **cross-level cost cache** — a bucket cost depends only on `(start,
//!   end)`, never on the budget level, so sweep results are reused across
//!   all `B` levels through a per-endpoint cache.

use pds_core::error::{PdsError, Result};

use crate::histogram::{Bucket, Histogram};
use crate::oracle::BucketCostOracle;

/// How many candidate starts are evaluated per batched sweep call while
/// scanning outwards (bounds the overshoot past the early-exit point).
const SWEEP_CHUNK: usize = 8;

/// Diagnostics of an approximate run, used by the ablation benchmarks to
/// compare against the exact DP.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApproxStats {
    /// Number of single-bucket cost evaluations performed (cache misses).
    pub bucket_evaluations: usize,
    /// Number of candidate split positions retained, summed over levels.
    pub retained_candidates: usize,
    /// Bucket costs served from the cross-level cache instead of the oracle.
    pub cache_hits: usize,
    /// Candidate splits dismissed without an individual evaluation: the
    /// bisected cost window's prefix prune (which pays only its binary-search
    /// probes) or, on the non-monotone path, the prefix-error bound.
    pub pruned_candidates: usize,
    /// The approximation parameter that was used.
    pub epsilon: f64,
}

/// Result of the approximate construction: the histogram plus diagnostics.
#[derive(Debug, Clone)]
pub struct ApproxHistogram {
    /// The constructed histogram (cost within `(1 + ε)` of optimal).
    pub histogram: Histogram,
    /// Diagnostics about the run.
    pub stats: ApproxStats,
}

/// Per-endpoint cost cache, indexed by bucket depth `endpoint − start`.
///
/// The scans only ever request starts close to their endpoint (the
/// branch-and-bound caps the depth), so a dense window with NaN holes gives
/// O(1) lookups and inserts with memory proportional to the deepest request.
#[derive(Default, Clone)]
struct EndpointCache {
    costs: Vec<f64>,
}

impl EndpointCache {
    fn get(&self, depth: usize) -> Option<f64> {
        self.costs.get(depth).copied().filter(|cost| !cost.is_nan())
    }

    fn insert(&mut self, depth: usize, cost: f64) {
        if depth >= self.costs.len() {
            self.costs.resize(depth + 1, f64::NAN);
        }
        self.costs[depth] = cost;
    }
}

/// Oracle-access counters shared by the scan paths.
struct ScanStats {
    evaluations: usize,
    cache_hits: usize,
    pruned: usize,
}

/// Scratch buffers for [`evaluate_chunk`].
#[derive(Default)]
struct ChunkScratch {
    costs: Vec<f64>,
    missing: Vec<usize>,
    missing_pos: Vec<usize>,
}

/// The cost of one bucket `[start, j]`, served from the endpoint cache when
/// possible (recorded as a hit) and from the oracle otherwise (recorded as
/// an evaluation and cached).
fn probe_cost<O: BucketCostOracle + ?Sized>(
    oracle: &O,
    j: usize,
    start: usize,
    cache: &mut EndpointCache,
    stats: &mut ScanStats,
) -> f64 {
    if let Some(cost) = cache.get(j - start) {
        stats.cache_hits += 1;
        return cost;
    }
    let cost = oracle.bucket(start, j).cost;
    cache.insert(j - start, cost);
    stats.evaluations += 1;
    cost
}

/// Evaluates one chunk of candidate starts (descending, i.e. narrowest final
/// bucket first) against the current best total: cached costs are reused,
/// misses go through one batched `costs_ending_at` sweep.  Used by the
/// non-monotone scan path only (monotone oracles go through the bisected
/// cost window instead).
#[allow(clippy::too_many_arguments)]
fn evaluate_chunk<O: BucketCostOracle + ?Sized>(
    oracle: &O,
    j: usize,
    chunk_starts: &[usize],
    chunk_lefts: &[f64],
    cache: &mut EndpointCache,
    scratch: &mut ChunkScratch,
    stats: &mut ScanStats,
    best: &mut f64,
    best_s: &mut u32,
) {
    let ChunkScratch {
        costs,
        missing,
        missing_pos,
    } = scratch;
    costs.clear();
    costs.resize(chunk_starts.len(), 0.0);
    missing.clear();
    missing_pos.clear();
    for (k, &start) in chunk_starts.iter().enumerate() {
        match cache.get(j - start) {
            Some(cost) => {
                costs[k] = cost;
                stats.cache_hits += 1;
            }
            None => {
                missing.push(start);
                missing_pos.push(k);
            }
        }
    }
    if !missing.is_empty() {
        // chunk_starts descends, so the misses reversed ascend.
        missing.reverse();
        let fresh = oracle.costs_ending_at(j, missing);
        stats.evaluations += missing.len();
        let m = missing.len();
        for (asc, (&start, &cost)) in missing.iter().zip(&fresh).enumerate() {
            costs[missing_pos[m - 1 - asc]] = cost;
            cache.insert(j - start, cost);
        }
    }
    for (k, (&start, &left)) in chunk_starts.iter().zip(chunk_lefts).enumerate() {
        let total = left + costs[k];
        if total < *best {
            *best = total;
            *best_s = start as u32;
        }
    }
}

/// Builds a `b`-bucket histogram whose error is at most `(1 + epsilon)` times
/// the optimal error, using far fewer bucket-cost evaluations than the exact
/// dynamic program.
///
/// Only cumulative metrics are supported (the paper's Theorem 5 covers SSE,
/// SSRE, SAE and SARE); an error is returned for maximum-error oracles.
pub fn approx_histogram<O: BucketCostOracle + ?Sized>(
    oracle: &O,
    b: usize,
    epsilon: f64,
) -> Result<ApproxHistogram> {
    let n = oracle.n();
    if n == 0 || b == 0 {
        return Err(PdsError::InvalidParameter {
            message: "the domain and the bucket budget must be non-empty".into(),
        });
    }
    if epsilon <= 0.0 || epsilon.is_nan() {
        return Err(PdsError::InvalidParameter {
            message: format!("epsilon must be positive, got {epsilon}"),
        });
    }
    if !oracle.is_cumulative() {
        return Err(PdsError::InvalidParameter {
            message: "the (1+eps) approximation applies to cumulative error metrics only".into(),
        });
    }
    let b = b.min(n);
    // The induction loses a factor (1 + δ) per budget level; choosing δ so
    // that (1 + δ)^B = 1 + ε makes the compounded loss exactly (1 + ε) —
    // roughly twice as much thinning as the loose ε/(2B) bound.
    let delta = (1.0 + epsilon).powf(1.0 / b as f64) - 1.0;
    let monotone = oracle.costs_monotone();

    let mut stats = ScanStats {
        evaluations: 0,
        cache_hits: 0,
        pruned: 0,
    };
    let mut retained = 0usize;

    // value[level][j] = approximate optimal error of a histogram with at
    // most (level+1) buckets over the prefix [0, j]; split[level][j] = chosen
    // start of the final bucket.  Values are computed for every j >= level,
    // but the inner minimisation only looks at the retained candidate
    // positions of the previous level.
    let mut value = vec![vec![f64::INFINITY; n]; b];
    let mut split = vec![vec![u32::MAX; n]; b];

    // Level 0: a single bucket [0, j] per endpoint, obtained with one
    // prefix-direction column sweep so incremental oracles (tuple-exact SSE)
    // amortise the growing-bucket work instead of rescanning per endpoint.
    let all_ends: Vec<usize> = (0..n).collect();
    for (j, cost) in oracle
        .costs_starting_at(0, &all_ends)
        .into_iter()
        .enumerate()
    {
        value[0][j] = cost;
        split[0][j] = 0;
    }
    stats.evaluations += n;

    // Bucket costs depend only on (start, endpoint), never on the level, so
    // sweep results are shared across levels through a per-endpoint cache.
    let mut cache: Vec<EndpointCache> = vec![EndpointCache::default(); n];
    let mut chunk_starts: Vec<usize> = Vec::with_capacity(SWEEP_CHUNK);
    let mut chunk_lefts: Vec<f64> = Vec::with_capacity(SWEEP_CHUNK);
    let mut scratch = ChunkScratch::default();

    for level in 1..b {
        // Candidate split positions from the previous level: positions p such
        // that the final bucket of the current level starts at p + 1.
        // Invariant: candidates partition the processed prefix into runs whose
        // approximate value grows by at most (1 + delta); the right end of the
        // closed run is retained.  `cand_lefts` mirrors the list with the
        // previous level's (always finite) value at each candidate, so the
        // minimisation loop streams a contiguous array.
        let mut candidates: Vec<usize> = Vec::new();
        let mut cand_lefts: Vec<f64> = Vec::new();
        let mut run_start_value = f64::INFINITY;
        for j in 0..n {
            // Maintain the candidate list over the prefix positions < j of the
            // previous level.
            if j > 0 {
                let p = j - 1;
                let v = value[level - 1][p];
                if v.is_finite() {
                    if run_start_value.is_infinite() {
                        run_start_value = v;
                        candidates.push(p);
                        cand_lefts.push(v);
                    } else if v > (1.0 + delta) * run_start_value {
                        // Close the previous run at p (keep it) and start a new
                        // run here.
                        candidates.push(p);
                        cand_lefts.push(v);
                        run_start_value = v;
                    } else {
                        // Extend the current run: replace its right end with p.
                        *candidates.last_mut().expect("non-empty run") = p;
                        *cand_lefts.last_mut().expect("non-empty run") = v;
                    }
                }
            }
            if j < level {
                // Not enough items for level+1 buckets.
                continue;
            }
            // Seed with the previous level's solution for the same prefix: a
            // histogram with fewer buckets is always feasible, and the bound
            // lets the scan prune before its first oracle call.
            let mut best = value[level - 1][j];
            let mut best_s = split[level - 1][j];
            if monotone {
                // Phase 1 — bisect the monotone cost window.  Bucket costs
                // are non-increasing along the (ascending) candidate list,
                // so the candidates whose final-bucket cost alone reaches
                // the seeded bound form a prefix; one binary search finds
                // its end and dismisses the prefix wholesale.  Probes hit
                // the cross-level cache first and fall back to a single
                // oracle evaluation (which is then cached for later levels).
                let mut lo = 0usize;
                let mut hi = candidates.len();
                while lo < hi {
                    let mid = (lo + hi) / 2;
                    let cost =
                        probe_cost(oracle, j, candidates[mid] + 1, &mut cache[j], &mut stats);
                    if cost >= best {
                        lo = mid + 1;
                    } else {
                        hi = mid;
                    }
                }
                let cut = lo;
                stats.pruned += cut;
                // Phase 2 — evaluate the surviving suffix [cut, len) in one
                // fused pass: cached candidates fold straight into the
                // minimum (no exit tests; a candidate with a large prefix
                // error simply never wins), misses are collected and
                // completed with a single batched ascending sweep.
                chunk_starts.clear();
                {
                    let window = &cache[j];
                    for (&p, &left) in candidates[cut..].iter().zip(&cand_lefts[cut..]) {
                        debug_assert!(p < j);
                        match window.get(j - p - 1) {
                            Some(cost) => {
                                let total = left + cost;
                                if total < best {
                                    best = total;
                                    best_s = (p + 1) as u32;
                                }
                            }
                            None => chunk_starts.push(p + 1),
                        }
                    }
                }
                stats.cache_hits += candidates.len() - cut - chunk_starts.len();
                if !chunk_starts.is_empty() {
                    let fresh = oracle.costs_ending_at(j, &chunk_starts);
                    stats.evaluations += fresh.len();
                    for (&start, &cost) in chunk_starts.iter().zip(&fresh) {
                        cache[j].insert(j - start, cost);
                        let total = value[level - 1][start - 1] + cost;
                        if total < best {
                            best = total;
                            best_s = start as u32;
                        }
                    }
                }
            } else {
                // Non-monotone oracles (the tuple-pdf prefix-array SSE
                // approximation): linear walk from the narrowest final
                // bucket outwards, in chunks routed through the batched
                // sweep API.
                let mut idx = candidates.len();
                while idx > 0 {
                    chunk_starts.clear();
                    chunk_lefts.clear();
                    while idx > 0 && chunk_starts.len() < SWEEP_CHUNK {
                        idx -= 1;
                        let p = candidates[idx];
                        debug_assert!(p < j);
                        let left = cand_lefts[idx];
                        if left >= best {
                            stats.pruned += 1;
                            continue;
                        }
                        chunk_starts.push(p + 1);
                        chunk_lefts.push(left);
                    }
                    if chunk_starts.is_empty() {
                        break;
                    }
                    evaluate_chunk(
                        oracle,
                        j,
                        &chunk_starts,
                        &chunk_lefts,
                        &mut cache[j],
                        &mut scratch,
                        &mut stats,
                        &mut best,
                        &mut best_s,
                    );
                }
            }
            value[level][j] = best;
            split[level][j] = best_s;
        }
        retained += candidates.len();
    }

    // Reconstruct the bucketing.  Seeded cells may point at a solution from a
    // lower level, so clamp the level to the prefix length as we walk back.
    let mut buckets_rev: Vec<Bucket> = Vec::with_capacity(b);
    let mut level = b - 1;
    let mut j = n - 1;
    loop {
        level = level.min(j);
        let s = split[level][j] as usize;
        let sol = oracle.bucket(s, j);
        buckets_rev.push(Bucket {
            start: s,
            end: j,
            representative: sol.representative,
            cost: sol.cost,
        });
        if level == 0 || s == 0 {
            break;
        }
        j = s - 1;
        level -= 1;
    }
    buckets_rev.reverse();
    let histogram = Histogram::new(n, buckets_rev)?;
    Ok(ApproxHistogram {
        histogram,
        stats: ApproxStats {
            bucket_evaluations: stats.evaluations,
            retained_candidates: retained,
            cache_hits: stats.cache_hits,
            pruned_candidates: stats.pruned,
            epsilon,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::DpTables;
    use crate::oracle::sse::{SseObjective, SseOracle};
    use crate::oracle::{abs::WeightedAbsOracle, maxerr::MaxErrOracle, ssre::SsreOracle};
    use pds_core::generator::{mystiq_like, zipf_value_pdf, MystiqLikeConfig, ValuePdfConfig};
    use pds_core::model::ProbabilisticRelation;

    fn workload(n: usize, seed: u64) -> ProbabilisticRelation {
        mystiq_like(MystiqLikeConfig {
            n,
            avg_tuples_per_item: 2.5,
            skew: 0.8,
            seed,
        })
        .into()
    }

    #[test]
    fn approximation_guarantee_holds_for_sse() {
        for seed in [1, 2, 3] {
            let rel = workload(60, seed);
            let oracle = SseOracle::new(&rel, SseObjective::PaperEq5);
            for (b, eps) in [(4, 0.1), (8, 0.25), (6, 0.05)] {
                let exact = DpTables::build(&oracle, b).unwrap().optimal_cost(b);
                let approx = approx_histogram(&oracle, b, eps).unwrap();
                assert!(
                    approx.histogram.total_cost() <= (1.0 + eps) * exact + 1e-9,
                    "seed {seed}, b={b}, eps={eps}: {} vs (1+eps)*{exact}",
                    approx.histogram.total_cost()
                );
                assert!(approx.histogram.total_cost() >= exact - 1e-9);
                assert_eq!(
                    approx.histogram.num_buckets().min(b),
                    approx.histogram.num_buckets()
                );
            }
        }
    }

    #[test]
    fn approximation_guarantee_holds_for_ssre_and_sae() {
        let rel: ProbabilisticRelation = zipf_value_pdf(ValuePdfConfig {
            n: 48,
            max_entries_per_item: 3,
            max_frequency: 8.0,
            skew: 1.0,
            zero_mass: 0.2,
            seed: 4,
        })
        .into();
        let eps = 0.1;
        let b = 6;
        let ssre = SsreOracle::new(&rel, 0.5);
        let exact = DpTables::build(&ssre, b).unwrap().optimal_cost(b);
        let approx = approx_histogram(&ssre, b, eps).unwrap();
        assert!(approx.histogram.total_cost() <= (1.0 + eps) * exact + 1e-9);

        let sae = WeightedAbsOracle::sae(&rel);
        let exact = DpTables::build(&sae, b).unwrap().optimal_cost(b);
        let approx = approx_histogram(&sae, b, eps).unwrap();
        assert!(approx.histogram.total_cost() <= (1.0 + eps) * exact + 1e-9);
    }

    #[test]
    fn approximate_run_thins_the_candidate_splits() {
        let n = 160;
        let b = 12;
        let rel = workload(n, 9);
        let oracle = SseOracle::new(&rel, SseObjective::PaperEq5);
        let approx = approx_histogram(&oracle, b, 0.25).unwrap();
        // The textbook O(Bn²) recurrence evaluates a bucket error for every
        // (prefix, budget, split) triple; the approximation must do less.
        let exact_recurrence_evals = b * n * (n + 1) / 2;
        assert!(
            approx.stats.bucket_evaluations < exact_recurrence_evals,
            "{} evaluations vs {exact_recurrence_evals} for the exact recurrence",
            approx.stats.bucket_evaluations
        );
        // And also less than the sweep-based exact DP, which computes every
        // (start, endpoint) bucket cost once.
        assert!(
            approx.stats.bucket_evaluations < n * (n + 1) / 2,
            "{} evaluations vs the exact DP's {}",
            approx.stats.bucket_evaluations,
            n * (n + 1) / 2
        );
        // Candidate splits per level are a strict subset of all positions.
        assert!(approx.stats.retained_candidates > 0);
        assert!(approx.stats.retained_candidates < (b - 1) * n);
        assert_eq!(approx.stats.epsilon, 0.25);
        // A looser epsilon keeps fewer candidates and evaluates fewer buckets.
        let looser = approx_histogram(&oracle, b, 4.0).unwrap();
        assert!(looser.stats.bucket_evaluations <= approx.stats.bucket_evaluations);
        assert!(
            looser.stats.bucket_evaluations < exact_recurrence_evals / 4,
            "{} evaluations with eps=4",
            looser.stats.bucket_evaluations
        );
    }

    #[test]
    fn stats_expose_cache_hits_and_pruning() {
        let n = 200;
        let b = 10;
        let rel = workload(n, 21);
        let oracle = SsreOracle::new(&rel, 0.5);
        let approx = approx_histogram(&oracle, b, 0.1).unwrap();
        // With 10 levels over the same endpoints, the cross-level cache and
        // the pruning rules must both fire on a non-trivial workload.
        assert!(approx.stats.cache_hits > 0, "{:?}", approx.stats);
        assert!(approx.stats.pruned_candidates > 0, "{:?}", approx.stats);
        // Cached lookups plus fresh evaluations cover every candidate that
        // was not pruned away.
        assert!(approx.stats.bucket_evaluations > 0);
    }

    #[test]
    fn degenerate_budgets_and_parameters() {
        let rel = workload(10, 2);
        let oracle = SseOracle::new(&rel, SseObjective::PaperEq5);
        // One bucket: approximation equals the exact single bucket.
        let approx = approx_histogram(&oracle, 1, 0.5).unwrap();
        assert_eq!(approx.histogram.num_buckets(), 1);
        assert!((approx.histogram.total_cost() - oracle.bucket(0, 9).cost).abs() < 1e-12);
        // More buckets than items clamps to n and reaches the minimum error.
        let approx = approx_histogram(&oracle, 30, 0.5).unwrap();
        let exact = DpTables::build(&oracle, 10).unwrap().optimal_cost(10);
        assert!(approx.histogram.total_cost() <= (1.0 + 0.5) * exact + 1e-9);
        // Invalid parameters.
        assert!(approx_histogram(&oracle, 0, 0.5).is_err());
        assert!(approx_histogram(&oracle, 3, 0.0).is_err());
        assert!(approx_histogram(&oracle, 3, -1.0).is_err());
        let max_oracle = MaxErrOracle::mae(&rel);
        assert!(approx_histogram(&max_oracle, 3, 0.1).is_err());
    }
}
