//! The deterministic-technique baselines of the paper's experiments
//! (Sections 2.3 and 5): build a synopsis with the classic deterministic
//! algorithms applied to
//!
//! * the **expected frequencies** `E[g_i]` of every item ("Expectation"), or
//! * a single **sampled possible world** ("Sampled World"),
//!
//! and then score that synopsis under the expected error over possible
//! worlds.  Both baselines reuse the very same construction code, since
//! deterministic data is just a value-pdf relation whose pdfs have a single
//! unit-probability entry — exactly how the paper runs its comparison.

use rand::Rng;

use pds_core::error::Result;
use pds_core::metrics::ErrorMetric;
use pds_core::model::{ProbabilisticRelation, ValuePdfModel};
use pds_core::worlds::sample_world;

use crate::dp::optimal_histogram;
use crate::histogram::Histogram;
use crate::oracle::oracle_for_metric;

/// Which heuristic produced a baseline histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselineKind {
    /// Optimal histogram of the expected-frequency vector.
    Expectation,
    /// Optimal histogram of one sampled possible world.
    SampledWorld,
}

/// Builds the optimal `b`-bucket histogram of a *deterministic* frequency
/// vector under `metric`, using the same oracles and DP as the probabilistic
/// construction.
pub fn deterministic_histogram(
    frequencies: &[f64],
    metric: ErrorMetric,
    b: usize,
) -> Result<Histogram> {
    let relation: ProbabilisticRelation = ValuePdfModel::deterministic(frequencies).into();
    let oracle = oracle_for_metric(&relation, metric);
    optimal_histogram(&oracle, b)
}

/// The "Expectation" baseline: the optimal histogram of the expected
/// frequencies `E[g_i]`.
pub fn expectation_histogram(
    relation: &ProbabilisticRelation,
    metric: ErrorMetric,
    b: usize,
) -> Result<Histogram> {
    deterministic_histogram(&relation.expected_frequencies(), metric, b)
}

/// The "Sampled World" baseline: the optimal histogram of one possible world
/// drawn at random from the relation's distribution.
pub fn sampled_world_histogram<R: Rng + ?Sized>(
    relation: &ProbabilisticRelation,
    metric: ErrorMetric,
    b: usize,
    rng: &mut R,
) -> Result<Histogram> {
    let world = sample_world(relation, rng);
    deterministic_histogram(&world, metric, b)
}

/// Builds a baseline histogram of the requested kind.
pub fn baseline_histogram<R: Rng + ?Sized>(
    relation: &ProbabilisticRelation,
    metric: ErrorMetric,
    b: usize,
    kind: BaselineKind,
    rng: &mut R,
) -> Result<Histogram> {
    match kind {
        BaselineKind::Expectation => expectation_histogram(relation, metric, b),
        BaselineKind::SampledWorld => sampled_world_histogram(relation, metric, b, rng),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::optimal_histogram;
    use crate::evaluate::expected_cost;
    use crate::oracle::oracle_for_metric;
    use pds_core::generator::{mystiq_like, MystiqLikeConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn relation(n: usize) -> ProbabilisticRelation {
        mystiq_like(MystiqLikeConfig {
            n,
            avg_tuples_per_item: 3.0,
            skew: 0.9,
            seed: 17,
        })
        .into()
    }

    #[test]
    fn baselines_produce_valid_histograms() {
        let rel = relation(20);
        let mut rng = StdRng::seed_from_u64(1);
        for metric in [
            ErrorMetric::Sse,
            ErrorMetric::Ssre { c: 0.5 },
            ErrorMetric::Sae,
        ] {
            for kind in [BaselineKind::Expectation, BaselineKind::SampledWorld] {
                let h = baseline_histogram(&rel, metric, 5, kind, &mut rng).unwrap();
                assert_eq!(h.num_buckets(), 5);
                assert_eq!(h.n(), 20);
            }
        }
    }

    #[test]
    fn probabilistic_optimum_never_loses_to_the_baselines() {
        // This is the headline claim of the paper's Figure 2: under the
        // expected-error evaluation the probabilistic construction is at
        // least as good as both heuristics.
        let rel = relation(24);
        let mut rng = StdRng::seed_from_u64(7);
        for metric in [
            ErrorMetric::Ssre { c: 0.5 },
            ErrorMetric::Sae,
            ErrorMetric::Sare { c: 1.0 },
        ] {
            let oracle = oracle_for_metric(&rel, metric);
            for b in [2, 4, 8] {
                let optimal = optimal_histogram(&oracle, b).unwrap();
                let optimal_cost = expected_cost(&rel, metric, &optimal);
                let expectation = expectation_histogram(&rel, metric, b).unwrap();
                let sampled = sampled_world_histogram(&rel, metric, b, &mut rng).unwrap();
                assert!(
                    expected_cost(&rel, metric, &expectation) >= optimal_cost - 1e-9,
                    "{metric} b={b}: expectation beat the optimum"
                );
                assert!(
                    expected_cost(&rel, metric, &sampled) >= optimal_cost - 1e-9,
                    "{metric} b={b}: sampled world beat the optimum"
                );
            }
        }
    }

    #[test]
    fn expectation_baseline_is_exact_on_deterministic_data() {
        // With no uncertainty the expectation heuristic *is* the optimal
        // probabilistic histogram.
        let freqs = [1.0, 1.0, 2.0, 8.0, 8.0, 9.0, 0.0, 0.0];
        let rel: ProbabilisticRelation = ValuePdfModel::deterministic(&freqs).into();
        let metric = ErrorMetric::Sse;
        let oracle = oracle_for_metric(&rel, metric);
        let optimal = optimal_histogram(&oracle, 3).unwrap();
        let baseline = expectation_histogram(&rel, metric, 3).unwrap();
        assert!(
            (expected_cost(&rel, metric, &optimal) - expected_cost(&rel, metric, &baseline)).abs()
                < 1e-9
        );
    }

    #[test]
    fn sampled_world_baseline_depends_on_the_seed() {
        let rel = relation(30);
        let metric = ErrorMetric::Sse;
        let mut r1 = StdRng::seed_from_u64(1);
        let mut r2 = StdRng::seed_from_u64(2);
        let h1 = sampled_world_histogram(&rel, metric, 4, &mut r1).unwrap();
        let h2 = sampled_world_histogram(&rel, metric, 4, &mut r2).unwrap();
        // Different worlds generally give different bucketings or
        // representatives; at minimum the call is deterministic per seed.
        let h1_again =
            sampled_world_histogram(&rel, metric, 4, &mut StdRng::seed_from_u64(1)).unwrap();
        assert_eq!(h1, h1_again);
        assert!(h1 != h2 || h1.boundaries() == h2.boundaries());
    }
}
