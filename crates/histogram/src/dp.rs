//! The optimal-histogram dynamic program (equation (2) of the paper).
//!
//! The principle of optimality holds for probabilistic data exactly as for
//! deterministic data: removing the final bucket of an optimal `B`-bucket
//! histogram leaves an optimal `(B−1)`-bucket histogram over the remaining
//! prefix.  The recurrence
//!
//! ```text
//! OPT[j, b] = min_{0 ≤ i < j} h( OPT[i, b−1], BERR([i+1, j]) )
//! ```
//!
//! with `h = +` for cumulative metrics and `h = max` for maximum-error
//! metrics, is evaluated with `O(B n²)` bucket-cost lookups.  The DP is
//! generic over a [`BucketCostOracle`]; bucket costs for a fixed right
//! endpoint are obtained in one batch via
//! [`BucketCostOracle::costs_ending_at`] so that oracles with cross-item
//! interactions can amortise their work.
//!
//! The full DP table is retained: building it once for `B_max` buckets yields
//! the optimal histogram for *every* `b ≤ B_max`, which is how the error-vs-
//! buckets curves of Figure 2 are produced with a single DP run.
//!
//! ## Parallel construction
//!
//! With more than one worker thread (see `pds_core::pool`), [`DpTables::build`]
//! switches to a budget-level-major formulation: the triangular bucket-cost
//! matrix is filled first (one `costs_ending_at` sweep per right endpoint,
//! endpoints sharded over threads), then each budget level's minimisation row
//! is computed in parallel over endpoint chunks — every cell of level `b`
//! depends only on level `b − 1`, so a level is embarrassingly parallel.
//! Each cell runs the *same* ascending argmin scan over the same
//! oracle-produced costs as the serial path, so the resulting tables (costs,
//! back-pointers, and every histogram extracted from them) are **bit-identical
//! to the serial build at any thread count** — a property the test suite
//! pins.  The matrix needs `4 n (n + 1)` bytes; above
//! [`DpTables::PARALLEL_MATRIX_BYTE_CAP`] (or with one thread) the serial
//! path runs instead, unchanged.

use pds_core::error::{PdsError, Result};
use pds_core::pool;

use crate::histogram::{Bucket, Histogram};
use crate::oracle::BucketCostOracle;

/// The filled dynamic-programming tables: optimal costs and back-pointers for
/// every prefix length and every bucket budget up to `b_max`.
#[derive(Debug, Clone)]
pub struct DpTables {
    n: usize,
    b_max: usize,
    cumulative: bool,
    /// `cost[(b-1) * n + j]` = optimal error of a `b`-bucket histogram over
    /// the prefix `[0, j]`.
    cost: Vec<f64>,
    /// `back[(b-1) * n + j]` = start index of the final bucket in that
    /// optimal histogram.
    back: Vec<u32>,
    /// Number of bucket costs computed by the sweeps while building.
    bucket_evaluations: usize,
}

impl DpTables {
    /// Ceiling on the triangular bucket-cost matrix the parallel build may
    /// allocate (`4 n (n + 1)` bytes — ~67 MB at `n = 4096`); above it the
    /// serial path runs regardless of thread count.
    pub const PARALLEL_MATRIX_BYTE_CAP: usize = 512 << 20;

    /// Domains below this size always build serially — the level barriers
    /// would cost more than the work they distribute.
    const PARALLEL_MIN_N: usize = 192;

    /// Runs the dynamic program for up to `b_max` buckets, on the worker
    /// threads resolved by `pds_core::pool::num_threads()` (see the module
    /// docs; results are bit-identical at every thread count).
    pub fn build<O: BucketCostOracle + ?Sized>(oracle: &O, b_max: usize) -> Result<Self> {
        Self::build_with_threads(oracle, b_max, pool::num_threads())
    }

    /// [`DpTables::build`] with an explicit worker-thread count (1 forces the
    /// serial path).
    pub fn build_with_threads<O: BucketCostOracle + ?Sized>(
        oracle: &O,
        b_max: usize,
        threads: usize,
    ) -> Result<Self> {
        let n = oracle.n();
        if n == 0 || b_max == 0 {
            return Err(PdsError::InvalidParameter {
                message: "the domain and the bucket budget must be non-empty".into(),
            });
        }
        let matrix_bytes = n * (n + 1) / 2 * std::mem::size_of::<f64>();
        if threads.max(1) > 1
            && n >= Self::PARALLEL_MIN_N
            && matrix_bytes <= Self::PARALLEL_MATRIX_BYTE_CAP
        {
            Self::build_parallel(oracle, b_max.min(n), threads)
        } else {
            Self::build_serial(oracle, b_max.min(n))
        }
    }

    /// The single-threaded dynamic program: one batched sweep per right
    /// endpoint, all budget levels filled from it before moving on.
    fn build_serial<O: BucketCostOracle + ?Sized>(oracle: &O, b_max: usize) -> Result<Self> {
        let n = oracle.n();
        let cumulative = oracle.is_cumulative();
        let combine = |left: f64, bucket: f64| {
            if cumulative {
                left + bucket
            } else {
                left.max(bucket)
            }
        };
        let mut cost = vec![f64::INFINITY; b_max * n];
        let mut back = vec![u32::MAX; b_max * n];
        let all_starts: Vec<usize> = (0..n).collect();
        let mut bucket_evaluations = 0usize;
        for j in 0..n {
            // One batched sweep per right endpoint: bucket_costs[s] is the
            // cost of [s, j] for every start, amortised by the oracle.
            let bucket_costs = oracle.costs_ending_at(j, &all_starts[..=j]);
            bucket_evaluations += j + 1;
            // b = 1: a single bucket covering [0, j].
            cost[j] = bucket_costs[0];
            back[j] = 0;
            let max_b = b_max.min(j + 1);
            for b in 2..=max_b {
                let mut best = f64::INFINITY;
                let mut best_s = u32::MAX;
                let prev_row = (b - 2) * n;
                // The final bucket starts at s; the first b−1 buckets cover
                // [0, s−1], which needs at least b−1 items, so s ≥ b−1.
                for s in (b - 1)..=j {
                    let left = cost[prev_row + s - 1];
                    if !left.is_finite() {
                        continue;
                    }
                    let total = combine(left, bucket_costs[s]);
                    if total < best {
                        best = total;
                        best_s = s as u32;
                    }
                }
                cost[(b - 1) * n + j] = best;
                back[(b - 1) * n + j] = best_s;
            }
        }
        Ok(DpTables {
            n,
            b_max,
            cumulative,
            cost,
            back,
            bucket_evaluations,
        })
    }

    /// The budget-level-major parallel dynamic program (see the module
    /// docs): fill the triangular bucket-cost matrix with endpoint sweeps
    /// sharded over threads, then compute each budget level's row in
    /// parallel over endpoint chunks.  Performs the same oracle sweeps and
    /// the same ascending argmin scans as [`DpTables::build_serial`], so the
    /// output is bit-identical.
    fn build_parallel<O: BucketCostOracle + ?Sized>(
        oracle: &O,
        b_max: usize,
        threads: usize,
    ) -> Result<Self> {
        let n = oracle.n();
        let cumulative = oracle.is_cumulative();
        let combine = |left: f64, bucket: f64| {
            if cumulative {
                left + bucket
            } else {
                left.max(bucket)
            }
        };
        // Triangular cost matrix: row `j` starts at `j (j + 1) / 2` and holds
        // the cost of `[s, j]` for every start `s ≤ j` — exactly the
        // per-endpoint sweep the serial path consumes in place.  Workers
        // write straight into disjoint regions of the single allocation
        // (row lengths grow with `j`, so chunk boundaries are balanced by
        // matrix *area*, not row count), keeping peak memory at one matrix.
        let row_off = |j: usize| j * (j + 1) / 2;
        let all_starts: Vec<usize> = (0..n).collect();
        let total_entries = row_off(n);
        let mut tri: Vec<f64> = vec![0.0; total_entries];
        {
            let target_chunks = (threads * 4).min(n);
            let mut bounds = vec![0usize];
            for c in 1..=target_chunks {
                let target = total_entries * c / target_chunks;
                let mut j = *bounds.last().expect("non-empty");
                while j < n && row_off(j) < target {
                    j += 1;
                }
                if j > *bounds.last().expect("non-empty") {
                    bounds.push(j);
                }
            }
            if *bounds.last().expect("non-empty") < n {
                bounds.push(n);
            }
            let mut regions: Vec<(std::ops::Range<usize>, &mut [f64])> = Vec::new();
            let mut rest: &mut [f64] = &mut tri;
            for window in bounds.windows(2) {
                let len = row_off(window[1]) - row_off(window[0]);
                let (head, tail) = rest.split_at_mut(len);
                regions.push((window[0]..window[1], head));
                rest = tail;
            }
            let mut per_thread: Vec<Vec<(std::ops::Range<usize>, &mut [f64])>> =
                (0..threads).map(|_| Vec::new()).collect();
            for (i, region) in regions.into_iter().enumerate() {
                per_thread[i % threads].push(region);
            }
            let all_starts = &all_starts;
            std::thread::scope(|scope| {
                let handles: Vec<_> = per_thread
                    .into_iter()
                    .filter(|work| !work.is_empty())
                    .map(|work| {
                        scope.spawn(move || {
                            for (rows, out) in work {
                                let mut offset = 0usize;
                                for j in rows {
                                    let row = oracle.costs_ending_at(j, &all_starts[..=j]);
                                    out[offset..offset + j + 1].copy_from_slice(&row);
                                    offset += j + 1;
                                }
                            }
                        })
                    })
                    .collect();
                for handle in handles {
                    handle
                        .join()
                        .unwrap_or_else(|payload| std::panic::resume_unwind(payload));
                }
            });
        }
        let bucket_evaluations = total_entries;

        let mut cost = vec![f64::INFINITY; b_max * n];
        let mut back = vec![u32::MAX; b_max * n];
        // b = 1: a single bucket covering [0, j].
        for j in 0..n {
            cost[j] = tri[row_off(j)];
            back[j] = 0;
        }
        for b in 2..=b_max {
            // Level `b` reads only level `b − 1`, so every endpoint of the
            // level is independent.
            let (filled, rest) = cost.split_at_mut((b - 1) * n);
            let prev = &filled[(b - 2) * n..];
            let level = pool::parallel_chunks_with(threads, n, 64, |range| {
                let mut out = Vec::with_capacity(range.len());
                for j in range {
                    if j + 1 < b {
                        // Fewer items than buckets: unreachable, as in the
                        // serial path.
                        out.push((f64::INFINITY, u32::MAX));
                        continue;
                    }
                    let row = &tri[row_off(j)..row_off(j) + j + 1];
                    let mut best = f64::INFINITY;
                    let mut best_s = u32::MAX;
                    for s in (b - 1)..=j {
                        let left = prev[s - 1];
                        if !left.is_finite() {
                            continue;
                        }
                        let total = combine(left, row[s]);
                        if total < best {
                            best = total;
                            best_s = s as u32;
                        }
                    }
                    out.push((best, best_s));
                }
                out
            });
            let cost_row = &mut rest[..n];
            let back_row = &mut back[(b - 1) * n..b * n];
            let mut j = 0usize;
            for chunk in level {
                for (c, s) in chunk {
                    cost_row[j] = c;
                    back_row[j] = s;
                    j += 1;
                }
            }
        }
        Ok(DpTables {
            n,
            b_max,
            cumulative,
            cost,
            back,
            bucket_evaluations,
        })
    }

    /// Number of bucket-cost evaluations the sweeps performed while building
    /// the tables (`n(n+1)/2` — one full sweep per right endpoint).
    pub fn bucket_evaluations(&self) -> usize {
        self.bucket_evaluations
    }

    /// Domain size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Largest bucket budget the tables were built for.
    pub fn b_max(&self) -> usize {
        self.b_max
    }

    /// Whether the DP combined bucket costs additively.
    pub fn is_cumulative(&self) -> bool {
        self.cumulative
    }

    /// The optimal objective value of a `b`-bucket histogram over the whole
    /// domain (for `b > n` the `n`-bucket value is returned).
    pub fn optimal_cost(&self, b: usize) -> f64 {
        let b = b.clamp(1, self.b_max).min(self.n);
        self.cost[(b - 1) * self.n + self.n - 1]
    }

    /// Extracts the optimal `b`-bucket histogram, using `oracle` to recover
    /// the representative value (and per-bucket cost) of each final bucket.
    pub fn extract<O: BucketCostOracle + ?Sized>(&self, b: usize, oracle: &O) -> Result<Histogram> {
        if b == 0 {
            return Err(PdsError::InvalidParameter {
                message: "at least one bucket is required".into(),
            });
        }
        let mut b = b.min(self.b_max).min(self.n);
        let mut j = self.n - 1;
        let mut buckets_rev: Vec<Bucket> = Vec::with_capacity(b);
        loop {
            let s = self.back[(b - 1) * self.n + j] as usize;
            let sol = oracle.bucket(s, j);
            buckets_rev.push(Bucket {
                start: s,
                end: j,
                representative: sol.representative,
                cost: sol.cost,
            });
            if b == 1 || s == 0 {
                break;
            }
            j = s - 1;
            b -= 1;
        }
        buckets_rev.reverse();
        Histogram::new(self.n, buckets_rev)
    }
}

/// Builds the optimal `b`-bucket histogram for the given oracle.
pub fn optimal_histogram<O: BucketCostOracle + ?Sized>(oracle: &O, b: usize) -> Result<Histogram> {
    let tables = DpTables::build(oracle, b)?;
    tables.extract(b, oracle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::sse::{SseObjective, SseOracle};
    use crate::oracle::{abs::WeightedAbsOracle, maxerr::MaxErrOracle, BucketSolution};
    use pds_core::generator::{mystiq_like, MystiqLikeConfig};
    use pds_core::model::{ProbabilisticRelation, ValuePdfModel};

    /// Brute-force optimal histogram cost by enumerating all bucketings.
    fn brute_force_optimal<O: BucketCostOracle>(oracle: &O, b: usize, cumulative: bool) -> f64 {
        fn recurse<O: BucketCostOracle>(
            oracle: &O,
            start: usize,
            b: usize,
            cumulative: bool,
        ) -> f64 {
            let n = oracle.n();
            if start == n {
                return if cumulative {
                    0.0
                } else {
                    f64::NEG_INFINITY.max(0.0)
                };
            }
            if b == 1 {
                return oracle.bucket(start, n - 1).cost;
            }
            let mut best = f64::INFINITY;
            for end in start..n {
                if n - end - 1 < b - 1 {
                    break;
                }
                let here = oracle.bucket(start, end).cost;
                let rest = recurse(oracle, end + 1, b - 1, cumulative);
                let total = if cumulative {
                    here + rest
                } else {
                    here.max(rest)
                };
                best = best.min(total);
            }
            best
        }
        recurse(oracle, 0, b.min(oracle.n()), cumulative)
    }

    #[test]
    fn dp_matches_brute_force_on_small_probabilistic_inputs() {
        let rel: ProbabilisticRelation = mystiq_like(MystiqLikeConfig {
            n: 9,
            avg_tuples_per_item: 2.0,
            skew: 0.7,
            seed: 5,
        })
        .into();
        let oracle = SseOracle::new(&rel, SseObjective::PaperEq5);
        for b in 1..=5 {
            let tables = DpTables::build(&oracle, b).unwrap();
            let brute = brute_force_optimal(&oracle, b, true);
            assert!(
                (tables.optimal_cost(b) - brute).abs() < 1e-9,
                "b={b}: {} vs {brute}",
                tables.optimal_cost(b)
            );
            // The extracted histogram is a valid partition with the same cost.
            let h = tables.extract(b, &oracle).unwrap();
            assert_eq!(h.num_buckets(), b.min(9));
            assert!((h.total_cost() - brute).abs() < 1e-9);
        }
    }

    #[test]
    fn dp_matches_brute_force_for_max_error_metrics() {
        let rel: ProbabilisticRelation = mystiq_like(MystiqLikeConfig {
            n: 8,
            avg_tuples_per_item: 2.0,
            skew: 0.7,
            seed: 11,
        })
        .into();
        let oracle = MaxErrOracle::mae(&rel);
        for b in 1..=4 {
            let tables = DpTables::build(&oracle, b).unwrap();
            let brute = brute_force_optimal(&oracle, b, false);
            assert!(
                (tables.optimal_cost(b) - brute).abs() < 1e-9,
                "b={b}: {} vs {brute}",
                tables.optimal_cost(b)
            );
            let h = tables.extract(b, &oracle).unwrap();
            assert!((h.max_bucket_cost() - brute).abs() < 1e-9);
        }
    }

    #[test]
    fn deterministic_v_optimal_histogram_matches_known_answer() {
        // Classic V-optimal instance: [1, 1, 1, 9, 9, 9] with 2 buckets has
        // zero error split between items 2 and 3.
        let rel: ProbabilisticRelation =
            ValuePdfModel::deterministic(&[1.0, 1.0, 1.0, 9.0, 9.0, 9.0]).into();
        let oracle = SseOracle::new(&rel, SseObjective::FixedRepresentative);
        let h = optimal_histogram(&oracle, 2).unwrap();
        assert_eq!(h.boundaries(), vec![2, 5]);
        assert!(h.total_cost().abs() < 1e-12);
        assert_eq!(h.estimates(), vec![1.0, 1.0, 1.0, 9.0, 9.0, 9.0]);
    }

    #[test]
    fn one_run_yields_all_smaller_budgets_consistently() {
        let rel: ProbabilisticRelation = mystiq_like(MystiqLikeConfig {
            n: 16,
            avg_tuples_per_item: 2.5,
            skew: 0.8,
            seed: 3,
        })
        .into();
        let oracle = WeightedAbsOracle::sae(&rel);
        let tables = DpTables::build(&oracle, 8).unwrap();
        let mut prev = f64::INFINITY;
        for b in 1..=8 {
            let from_table = tables.optimal_cost(b);
            let fresh = optimal_histogram(&oracle, b).unwrap().total_cost();
            assert!((from_table - fresh).abs() < 1e-9, "b={b}");
            // More buckets never hurt.
            assert!(from_table <= prev + 1e-9);
            prev = from_table;
        }
    }

    #[test]
    fn n_bucket_histogram_puts_every_item_in_its_own_bucket() {
        let rel: ProbabilisticRelation = mystiq_like(MystiqLikeConfig {
            n: 6,
            avg_tuples_per_item: 2.0,
            skew: 0.5,
            seed: 1,
        })
        .into();
        let oracle = SseOracle::new(&rel, SseObjective::PaperEq5);
        let h = optimal_histogram(&oracle, 6).unwrap();
        assert_eq!(h.num_buckets(), 6);
        for (i, bucket) in h.buckets().iter().enumerate() {
            assert_eq!(bucket.start, i);
            assert_eq!(bucket.end, i);
        }
        // Requesting more buckets than items clamps to n.
        let h2 = optimal_histogram(&oracle, 50).unwrap();
        assert_eq!(h2.num_buckets(), 6);
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let rel: ProbabilisticRelation = ValuePdfModel::deterministic(&[1.0, 2.0]).into();
        let oracle = SseOracle::new(&rel, SseObjective::PaperEq5);
        assert!(DpTables::build(&oracle, 0).is_err());
        let tables = DpTables::build(&oracle, 2).unwrap();
        assert!(tables.extract(0, &oracle).is_err());
    }

    /// A tiny oracle with hand-crafted costs to pin down the recurrence.
    struct ToyOracle;
    impl BucketCostOracle for ToyOracle {
        fn n(&self) -> usize {
            3
        }
        fn bucket(&self, s: usize, e: usize) -> BucketSolution {
            // cost = width - 1 (so singleton buckets are free).
            BucketSolution {
                representative: 0.0,
                cost: (e - s) as f64,
            }
        }
    }

    #[test]
    fn parallel_build_is_bit_identical_to_serial() {
        // Force the parallel path (PARALLEL_MIN_N is bypassed by calling the
        // internal builder directly) and compare every table entry bitwise
        // against the serial build, for a cumulative and a max-error metric.
        let rel: ProbabilisticRelation = mystiq_like(MystiqLikeConfig {
            n: 257, // odd size: uneven chunk boundaries
            avg_tuples_per_item: 2.0,
            skew: 0.8,
            seed: 23,
        })
        .into();
        let oracles: Vec<Box<dyn BucketCostOracle>> = vec![
            Box::new(SseOracle::new(&rel, SseObjective::PaperEq5)),
            Box::new(MaxErrOracle::mae(&rel)),
        ];
        for oracle in &oracles {
            let serial = DpTables::build_with_threads(oracle, 9, 1).unwrap();
            for threads in [2, 4] {
                let parallel = DpTables::build_parallel(oracle, 9, threads).unwrap();
                assert_eq!(parallel.bucket_evaluations(), serial.bucket_evaluations());
                assert_eq!(parallel.back, serial.back);
                let serial_bits: Vec<u64> = serial.cost.iter().map(|c| c.to_bits()).collect();
                let parallel_bits: Vec<u64> = parallel.cost.iter().map(|c| c.to_bits()).collect();
                assert_eq!(parallel_bits, serial_bits);
                for b in 1..=9 {
                    let a = serial.extract(b, oracle).unwrap();
                    let c = parallel.extract(b, oracle).unwrap();
                    assert_eq!(a.boundaries(), c.boundaries());
                    let a_bits: Vec<u64> = a.estimates().iter().map(|v| v.to_bits()).collect();
                    let c_bits: Vec<u64> = c.estimates().iter().map(|v| v.to_bits()).collect();
                    assert_eq!(a_bits, c_bits);
                }
            }
        }
    }

    #[test]
    fn toy_oracle_recurrence() {
        let tables = DpTables::build(&ToyOracle, 3).unwrap();
        assert_eq!(tables.optimal_cost(1), 2.0);
        assert_eq!(tables.optimal_cost(2), 1.0);
        assert_eq!(tables.optimal_cost(3), 0.0);
        let h = tables.extract(2, &ToyOracle).unwrap();
        assert_eq!(h.num_buckets(), 2);
    }
}
