//! # pds-histogram
//!
//! Optimal and approximate **histogram synopses on probabilistic data**,
//! reproducing Section 3 of *Cormode & Garofalakis, "Histograms and Wavelets
//! on Probabilistic Data", ICDE 2009*.
//!
//! The construction problem: given a probabilistic relation over the ordered
//! domain `[0, n)` and a budget of `B` buckets, choose bucket boundaries and
//! one representative value per bucket minimising the expected error over
//! possible worlds.  Supported error objectives:
//!
//! | metric | oracle | paper |
//! |---|---|---|
//! | sum squared error (SSE) | [`oracle::sse::SseOracle`] | §3.1, Thm 1 |
//! | sum squared relative error (SSRE) | [`oracle::ssre::SsreOracle`] | §3.2, Thm 2 |
//! | sum absolute error (SAE) | [`oracle::abs::WeightedAbsOracle`] | §3.3, Thm 3 |
//! | sum absolute relative error (SARE) | [`oracle::abs::WeightedAbsOracle`] | §3.4, Thm 4 |
//! | maximum absolute error (MAE) | [`oracle::maxerr::MaxErrOracle`] | §3.6, Thm 6 |
//! | maximum absolute relative error (MARE) | [`oracle::maxerr::MaxErrOracle`] | §3.6, Thm 6 |
//!
//! On top of the oracles sit the exact dynamic program ([`dp`]), the
//! `(1 + ε)`-approximate construction ([`approx`], §3.5), the deterministic
//! heuristics used as experimental baselines ([`baselines`]) and the
//! expected-cost evaluator ([`evaluate`]).
//!
//! ## Example
//!
//! ```
//! use pds_core::generator::{mystiq_like, MystiqLikeConfig};
//! use pds_core::metrics::ErrorMetric;
//! use pds_core::model::ProbabilisticRelation;
//! use pds_histogram::{build_histogram, evaluate::expected_cost};
//!
//! let relation: ProbabilisticRelation = mystiq_like(MystiqLikeConfig {
//!     n: 64,
//!     avg_tuples_per_item: 3.0,
//!     skew: 0.8,
//!     seed: 1,
//! })
//! .into();
//!
//! let metric = ErrorMetric::Ssre { c: 1.0 };
//! let histogram = build_histogram(&relation, metric, 8).unwrap();
//! assert_eq!(histogram.num_buckets(), 8);
//! let cost = expected_cost(&relation, metric, &histogram);
//! assert!(cost.is_finite());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod approx;
pub mod baselines;
pub mod dp;
pub mod equidepth;
pub mod evaluate;
pub mod histogram;
pub mod merge;
pub mod oracle;

pub use approx::{approx_histogram, ApproxHistogram, ApproxStats};
pub use baselines::{
    baseline_histogram, deterministic_histogram, expectation_histogram, sampled_world_histogram,
    BaselineKind,
};
pub use dp::{optimal_histogram, DpTables};
pub use equidepth::equidepth_histogram;
pub use evaluate::{error_percentage, expected_cost, sse_paper_cost};
pub use histogram::{Bucket, Histogram};
pub use merge::{
    merge_histograms, optimal_piecewise_histogram, pieces_of, sum_pieces, Piece,
    PiecewiseConstantOracle,
};
pub use oracle::{oracle_for_metric, BucketCostOracle, BucketSolution};

use pds_core::error::Result;
use pds_core::metrics::ErrorMetric;
use pds_core::model::ProbabilisticRelation;

/// Builds the optimal `b`-bucket histogram of `relation` under `metric`.
///
/// This is the high-level entry point; it instantiates the metric's bucket
/// cost oracle ([`oracle_for_metric`]) and runs the exact dynamic program.
pub fn build_histogram(
    relation: &ProbabilisticRelation,
    metric: ErrorMetric,
    b: usize,
) -> Result<Histogram> {
    let oracle = oracle_for_metric(relation, metric);
    optimal_histogram(&oracle, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pds_core::generator::test_workloads;

    #[test]
    fn build_histogram_works_for_every_metric_and_model() {
        for workload in test_workloads(24, 3) {
            for metric in [
                ErrorMetric::Sse,
                ErrorMetric::Ssre { c: 0.5 },
                ErrorMetric::Sae,
                ErrorMetric::Sare { c: 1.0 },
                ErrorMetric::Mae,
                ErrorMetric::Mare { c: 1.0 },
            ] {
                let h = build_histogram(&workload.relation, metric, 5).unwrap();
                assert_eq!(h.num_buckets(), 5, "{} {metric}", workload.name);
                assert_eq!(h.n(), 24);
                assert!(h.total_cost().is_finite());
            }
        }
    }

    #[test]
    fn more_buckets_never_increase_the_optimal_cost() {
        for workload in test_workloads(16, 5) {
            for metric in [
                ErrorMetric::Ssre { c: 1.0 },
                ErrorMetric::Sae,
                ErrorMetric::Mae,
            ] {
                let mut prev = f64::INFINITY;
                for b in 1..=8 {
                    let h = build_histogram(&workload.relation, metric, b).unwrap();
                    let cost = evaluate::expected_cost(&workload.relation, metric, &h);
                    assert!(
                        cost <= prev + 1e-9,
                        "{} {metric} b={b}: {cost} > {prev}",
                        workload.name
                    );
                    prev = cost;
                }
            }
        }
    }
}
