//! Evaluation of (arbitrary) histograms under the probabilistic error
//! metrics.
//!
//! The construction algorithms guarantee optimality of the histograms they
//! build, but the experimental comparison of Section 5 also needs to score
//! histograms produced by the deterministic heuristics (expected-frequency
//! and sampled-world) under the *expected* error over possible worlds.  All
//! cumulative and maximum metrics are per-item linear, so the expected cost
//! of a fixed histogram follows from the induced value pdfs.
//!
//! For SSE the paper's bucket objective (equation (5)) depends only on the
//! bucket boundaries (its representative is implicitly per-world optimal);
//! [`sse_paper_cost`] scores a bucketing under that objective so the
//! Figure 2(c) comparison can be reproduced exactly as published.

use pds_core::metrics::ErrorMetric;
use pds_core::model::{ProbabilisticRelation, ValuePdfModel};

use crate::histogram::Histogram;
use crate::oracle::sse::{SseObjective, SseOracle, TupleSseMode};

/// The expected error of `histogram` over `relation` under `metric`
/// (`E_W[Σ_i err(g_i, ĝ_i)]` for cumulative metrics,
/// `max_i E_W[err(g_i, ĝ_i)]` for maximum metrics), with the histogram's
/// stored representatives used as the estimates `ĝ_i`.
pub fn expected_cost(
    relation: &ProbabilisticRelation,
    metric: ErrorMetric,
    histogram: &Histogram,
) -> f64 {
    expected_cost_from_pdfs(&relation.induced_value_pdfs(), metric, histogram)
}

/// Same as [`expected_cost`] but takes precomputed induced value pdfs, so
/// repeated evaluations of many histograms over the same relation avoid the
/// conversion cost.
pub fn expected_cost_from_pdfs(
    pdfs: &ValuePdfModel,
    metric: ErrorMetric,
    histogram: &Histogram,
) -> f64 {
    let per_item = (0..pdfs.n()).map(|i| {
        let estimate = histogram.estimate(i);
        metric.expected_point_error(pdfs.item(i), estimate)
    });
    metric.combine(per_item)
}

/// Scores a bucketing under the paper's equation-(5) SSE objective
/// (`Σ_buckets [Σ_i E[g_i²] − E[(Σ_i g_i)²]/n_b]`).  Only the bucket
/// boundaries of `histogram` matter; representatives are implicitly the
/// per-bucket means.
pub fn sse_paper_cost(relation: &ProbabilisticRelation, histogram: &Histogram) -> f64 {
    let oracle = SseOracle::with_tuple_mode(relation, SseObjective::PaperEq5, TupleSseMode::Exact);
    histogram
        .buckets()
        .iter()
        .map(|b| {
            use crate::oracle::BucketCostOracle;
            oracle.bucket(b.start, b.end).cost
        })
        .sum()
}

/// Normalises a cost to the percentage scale used in Figures 2 and 4 of the
/// paper: `100 · (cost − best) / (worst − best)`, clamped to `[0, 100]` when
/// the denominator is positive.  `worst` is the cost of the coarsest synopsis
/// (one bucket / zero coefficients) and `best` the cost of the finest one
/// (`n` buckets / all coefficients), which for probabilistic data is
/// generally non-zero.
pub fn error_percentage(cost: f64, best: f64, worst: f64) -> f64 {
    let span = worst - best;
    if span <= 0.0 {
        return 0.0;
    }
    (100.0 * (cost - best) / span).clamp(0.0, 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::optimal_histogram;
    use crate::oracle::{oracle_for_metric, BucketCostOracle};
    use pds_core::generator::{mystiq_like, MystiqLikeConfig};
    use pds_core::model::ValuePdfModel;
    use pds_core::worlds::PossibleWorlds;

    fn small_relation() -> ProbabilisticRelation {
        mystiq_like(MystiqLikeConfig {
            n: 8,
            avg_tuples_per_item: 2.0,
            skew: 0.6,
            seed: 21,
        })
        .into()
    }

    #[test]
    fn expected_cost_matches_possible_worlds_enumeration() {
        let rel = small_relation();
        let worlds = PossibleWorlds::enumerate(&rel).unwrap();
        let histogram = Histogram::from_boundaries(8, &[2, 5, 7], &[1.0, 0.5, 2.0]).unwrap();
        for metric in [
            ErrorMetric::Sse,
            ErrorMetric::Ssre { c: 0.5 },
            ErrorMetric::Sae,
            ErrorMetric::Sare { c: 1.0 },
        ] {
            let analytic = expected_cost(&rel, metric, &histogram);
            let brute = worlds.expectation(|w| {
                (0..8)
                    .map(|i| metric.point_error(w[i], histogram.estimate(i)))
                    .sum()
            });
            assert!(
                (analytic - brute).abs() < 1e-9,
                "{metric}: {analytic} vs {brute}"
            );
        }
        // Maximum metrics: max over items of the per-item expectation.
        for metric in [ErrorMetric::Mae, ErrorMetric::Mare { c: 0.5 }] {
            let analytic = expected_cost(&rel, metric, &histogram);
            let brute = (0..8)
                .map(|i| worlds.expectation(|w| metric.point_error(w[i], histogram.estimate(i))))
                .fold(0.0, f64::max);
            assert!((analytic - brute).abs() < 1e-9);
        }
    }

    #[test]
    fn optimal_histogram_cost_agrees_with_evaluation() {
        // The DP's reported objective equals the independent evaluation of the
        // histogram it returns, for every per-item-linear metric.
        let rel = small_relation();
        for metric in [
            ErrorMetric::Ssre { c: 0.5 },
            ErrorMetric::Sae,
            ErrorMetric::Sare { c: 1.0 },
        ] {
            let oracle = oracle_for_metric(&rel, metric);
            let h = optimal_histogram(&oracle, 3).unwrap();
            let eval = expected_cost(&rel, metric, &h);
            assert!(
                (h.total_cost() - eval).abs() < 1e-9,
                "{metric}: {} vs {eval}",
                h.total_cost()
            );
        }
        for metric in [ErrorMetric::Mae, ErrorMetric::Mare { c: 0.5 }] {
            let oracle = oracle_for_metric(&rel, metric);
            let h = optimal_histogram(&oracle, 3).unwrap();
            let eval = expected_cost(&rel, metric, &h);
            assert!((h.max_bucket_cost() - eval).abs() < 1e-9, "{metric}");
        }
    }

    #[test]
    fn sse_paper_cost_matches_dp_objective() {
        let rel = small_relation();
        let oracle = SseOracle::with_tuple_mode(&rel, SseObjective::PaperEq5, TupleSseMode::Exact);
        let h = optimal_histogram(&oracle, 3).unwrap();
        assert!((sse_paper_cost(&rel, &h) - h.total_cost()).abs() < 1e-9);
        // Any other bucketing scores at least as high.
        let other = Histogram::from_boundaries(8, &[0, 1, 7], &[0.0, 0.0, 0.0]).unwrap();
        assert!(sse_paper_cost(&rel, &other) >= h.total_cost() - 1e-9);
    }

    #[test]
    fn no_histogram_beats_the_optimal_one_under_its_metric() {
        let rel = small_relation();
        let metric = ErrorMetric::Sare { c: 0.5 };
        let oracle = oracle_for_metric(&rel, metric);
        let best = optimal_histogram(&oracle, 3).unwrap();
        let best_cost = expected_cost(&rel, metric, &best);
        // Enumerate every 3-bucket bucketing with representatives chosen by
        // the oracle and check none does better.
        for e1 in 0..6 {
            for e2 in (e1 + 1)..7 {
                let ends = [e1, e2, 7];
                let reps: Vec<f64> = {
                    let mut start = 0;
                    ends.iter()
                        .map(|&e| {
                            let sol = oracle.bucket(start, e);
                            start = e + 1;
                            sol.representative
                        })
                        .collect()
                };
                let h = Histogram::from_boundaries(8, &ends, &reps).unwrap();
                assert!(expected_cost(&rel, metric, &h) >= best_cost - 1e-9);
            }
        }
    }

    #[test]
    fn error_percentage_normalisation() {
        assert_eq!(error_percentage(5.0, 0.0, 10.0), 50.0);
        assert_eq!(error_percentage(10.0, 10.0, 10.0), 0.0);
        assert_eq!(error_percentage(12.0, 0.0, 10.0), 100.0);
        assert_eq!(error_percentage(-1.0, 0.0, 10.0), 0.0);
        assert_eq!(error_percentage(3.0, 2.0, 6.0), 25.0);
    }

    #[test]
    fn deterministic_histogram_with_exact_representatives_has_zero_cost() {
        let freqs = [1.0, 1.0, 5.0, 5.0];
        let rel: ProbabilisticRelation = ValuePdfModel::deterministic(&freqs).into();
        let h = Histogram::from_boundaries(4, &[1, 3], &[1.0, 5.0]).unwrap();
        for metric in [
            ErrorMetric::Sse,
            ErrorMetric::Sae,
            ErrorMetric::Ssre { c: 1.0 },
            ErrorMetric::Mae,
        ] {
            assert!(expected_cost(&rel, metric, &h).abs() < 1e-12);
        }
    }
}
