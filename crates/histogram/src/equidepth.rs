//! Equi-depth histograms over probabilistic data.
//!
//! The paper's related-work discussion (Section 1.1) notes that prior work on
//! quantiles of uncertain data [5, 21] "can be thought of as the equi-depth
//! histogram": boundaries are chosen so that each bucket carries (roughly)
//! the same total *expected* frequency, i.e. the quantiles of the
//! expected-weight distribution.  Equi-depth bucketing ignores the error
//! objective entirely, which makes it a useful additional baseline for the
//! error-optimal constructions of Section 3: it is cheap (one prefix-sum
//! pass) but generally suboptimal under every metric.

use pds_core::error::{PdsError, Result};
use pds_core::metrics::ErrorMetric;
use pds_core::model::ProbabilisticRelation;

use crate::histogram::{Bucket, Histogram};
use crate::oracle::{oracle_for_metric, BucketCostOracle};

/// Builds a `b`-bucket equi-depth histogram of `relation`: boundaries at the
/// quantiles of the expected frequencies, representatives fitted optimally
/// for `metric` within each bucket (so the comparison against the optimal
/// histogram isolates the effect of the boundary choice).
pub fn equidepth_histogram(
    relation: &ProbabilisticRelation,
    metric: ErrorMetric,
    b: usize,
) -> Result<Histogram> {
    let n = relation.n();
    if n == 0 || b == 0 {
        return Err(PdsError::InvalidParameter {
            message: "the domain and the bucket budget must be non-empty".into(),
        });
    }
    let b = b.min(n);
    let means = relation.expected_frequencies();
    let total: f64 = means.iter().sum();
    let oracle = oracle_for_metric(relation, metric);

    // Walk the domain accumulating expected weight; close a bucket whenever
    // the running share reaches the next quantile (always leaving enough
    // items for the remaining buckets).
    let mut buckets = Vec::with_capacity(b);
    let mut start = 0usize;
    let mut acc = 0.0;
    for k in 1..=b {
        let target = total * k as f64 / b as f64;
        let mut end = start;
        // Leave at least (b - k) items for the remaining buckets.
        let last_allowed = n - (b - k) - 1;
        while end < last_allowed {
            acc += means[end];
            if acc + 1e-12 >= target {
                break;
            }
            end += 1;
        }
        if k == b {
            end = n - 1;
        } else if end >= last_allowed {
            end = last_allowed;
            // Account for the items consumed up to the forced boundary.
            acc = means[..=end].iter().sum();
        } else {
            // `end` stopped before consuming means[end..]; acc already
            // includes means[start..end]; include the boundary item.
            acc = means[..=end].iter().sum();
        }
        let sol = oracle.bucket(start, end);
        buckets.push(Bucket {
            start,
            end,
            representative: sol.representative,
            cost: sol.cost,
        });
        start = end + 1;
        if start >= n {
            break;
        }
    }
    Histogram::new(n, buckets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::optimal_histogram;
    use crate::evaluate::expected_cost;
    use pds_core::generator::{mystiq_like, MystiqLikeConfig};
    use pds_core::model::ValuePdfModel;

    fn relation(n: usize) -> ProbabilisticRelation {
        mystiq_like(MystiqLikeConfig {
            n,
            avg_tuples_per_item: 3.0,
            skew: 0.9,
            seed: 41,
        })
        .into()
    }

    #[test]
    fn produces_a_valid_partition_with_the_requested_buckets() {
        let rel = relation(40);
        for b in [1usize, 3, 7, 16, 40] {
            let h = equidepth_histogram(&rel, ErrorMetric::Sae, b).unwrap();
            assert_eq!(h.n(), 40);
            assert!(h.num_buckets() <= b);
            assert_eq!(h.buckets().first().unwrap().start, 0);
            assert_eq!(h.buckets().last().unwrap().end, 39);
        }
    }

    #[test]
    fn buckets_carry_roughly_equal_expected_weight() {
        let rel = relation(64);
        let b = 8;
        let h = equidepth_histogram(&rel, ErrorMetric::Sse, b).unwrap();
        let means = rel.expected_frequencies();
        let total: f64 = means.iter().sum();
        let target = total / b as f64;
        let max_item: f64 = means.iter().cloned().fold(0.0, f64::max);
        for bucket in h.buckets() {
            let weight: f64 = means[bucket.start..=bucket.end].iter().sum();
            // Each bucket's weight is within one item of the target (the
            // classic equi-depth slack) except possibly the last one.
            if bucket.end != 63 {
                assert!(
                    weight <= target + max_item + 1e-9,
                    "bucket [{}, {}] weight {weight} vs target {target}",
                    bucket.start,
                    bucket.end
                );
            }
        }
    }

    #[test]
    fn never_beats_the_error_optimal_histogram() {
        let rel = relation(48);
        for metric in [
            ErrorMetric::Sse,
            ErrorMetric::Ssre { c: 0.5 },
            ErrorMetric::Sae,
        ] {
            for b in [4usize, 8, 12] {
                let equi = equidepth_histogram(&rel, metric, b).unwrap();
                let oracle = oracle_for_metric(&rel, metric);
                let optimal = optimal_histogram(&oracle, b).unwrap();
                assert!(
                    expected_cost(&rel, metric, &equi)
                        >= expected_cost(&rel, metric, &optimal) - 1e-9,
                    "{metric} b={b}"
                );
            }
        }
    }

    #[test]
    fn uniform_data_gives_equal_width_buckets() {
        let rel: ProbabilisticRelation = ValuePdfModel::deterministic(&[2.0; 32]).into();
        let h = equidepth_histogram(&rel, ErrorMetric::Sae, 4).unwrap();
        assert_eq!(h.num_buckets(), 4);
        for bucket in h.buckets() {
            assert_eq!(bucket.width(), 8);
            assert_eq!(bucket.representative, 2.0);
            assert!(bucket.cost.abs() < 1e-12);
        }
    }

    #[test]
    fn degenerate_parameters_are_rejected_or_clamped() {
        let rel = relation(10);
        assert!(equidepth_histogram(&rel, ErrorMetric::Sae, 0).is_err());
        let h = equidepth_histogram(&rel, ErrorMetric::Sae, 100).unwrap();
        assert!(h.num_buckets() <= 10);
    }
}
