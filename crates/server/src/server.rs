//! The TCP front-end: accept loop, worker pool, per-connection command
//! loop.  See the crate docs for the protocol and the concurrency model.

use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use pds_core::error::PdsError;
use pds_core::io::read_stream;
use pds_core::pool;
use pds_core::telemetry::{Counter, Stopwatch};
use pds_store::SynopsisStore;

use crate::proto::{self, Command};
use crate::telemetry::ServerTelemetry;

/// Transport knobs; `..Default::default()` friendly.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Admission gate: connections admitted (queued + being served) at
    /// once.  Connections beyond the cap are answered
    /// `ERR server at capacity` and closed immediately — bounded queueing,
    /// no silent pile-up.
    pub max_connections: usize,
    /// Per-connection read timeout; a client idle longer is disconnected.
    pub read_timeout: Duration,
    /// Per-connection write timeout; a client draining slower than this is
    /// disconnected rather than parking a worker.
    pub write_timeout: Duration,
    /// Per-line byte cap (commands *and* ingest lines); longer lines are
    /// answered with `ERR`, the line is discarded, the connection
    /// survives.
    pub max_line_bytes: usize,
    /// Largest accepted `INGEST <count>`.
    pub max_batch: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 64,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(30),
            max_line_bytes: proto::MAX_COMMAND_BYTES,
            max_batch: 1 << 20,
        }
    }
}

/// Accepted connections waiting for a worker, plus the shutdown latch.
struct ConnQueue {
    queue: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
    shutdown: AtomicBool,
    /// Connections admitted and not yet finished (queued + in service);
    /// the admission gate compares this against `max_connections`.
    admitted: AtomicUsize,
}

impl ConnQueue {
    fn pop(&self) -> Option<TcpStream> {
        let mut queue = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            // Shutdown first: queued-but-unserved connections are dropped,
            // not served, so shutdown is never gated on idle clients.
            if self.shutdown.load(Ordering::SeqCst) {
                return None;
            }
            if let Some(stream) = queue.pop_front() {
                return Some(stream);
            }
            queue = self.ready.wait(queue).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Handle for stopping a running [`Server`] from another thread.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    shutdown: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Asks the accept loop to stop.  In-flight connections finish their
    /// current command loop; queued-but-unserved connections are dropped.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Nudge the blocking accept() with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
    }
}

/// A bound, not-yet-serving server: [`Server::bind`] then
/// [`Server::serve`] (which blocks until [`ServerHandle::shutdown`]).
#[derive(Debug)]
pub struct Server {
    store: Arc<SynopsisStore>,
    listener: TcpListener,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
    addr: SocketAddr,
    telemetry: Arc<ServerTelemetry>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) over `store`.
    pub fn bind(
        store: Arc<SynopsisStore>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Server {
            store,
            listener,
            config,
            shutdown: Arc::new(AtomicBool::new(false)),
            addr,
            telemetry: Arc::new(ServerTelemetry::new()),
        })
    }

    /// The bound address (the resolved port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle that can stop [`Server::serve`] from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shutdown: Arc::clone(&self.shutdown),
            addr: self.addr,
        }
    }

    /// Runs the accept loop, multiplexing connections over
    /// `pds_core::pool::num_threads()` worker threads (the workspace-wide
    /// `PDS_THREADS` resolution).  Blocks until [`ServerHandle::shutdown`];
    /// returns the first accept-loop I/O error, if any.
    pub fn serve(self) -> io::Result<()> {
        let workers = pool::num_threads().max(1);
        let conns = ConnQueue {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
            admitted: AtomicUsize::new(0),
        };
        let store = &self.store;
        let config = &self.config;
        let telemetry = &self.telemetry;
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    while let Some(stream) = conns.pop() {
                        // Errors are per-connection: a broken socket ends
                        // that session, never the worker.
                        telemetry.record_admitted();
                        let result = serve_connection(store, config, telemetry, stream);
                        telemetry.record_closed(result.as_ref().err().map(io::Error::kind));
                        conns.admitted.fetch_sub(1, Ordering::SeqCst);
                    }
                });
            }
            let result = self.accept_loop(&conns);
            conns.shutdown.store(true, Ordering::SeqCst);
            conns.ready.notify_all();
            result
        })
    }

    fn accept_loop(&self, conns: &ConnQueue) -> io::Result<()> {
        loop {
            let (stream, _) = match self.listener.accept() {
                Ok(accepted) => accepted,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            if self.shutdown.load(Ordering::SeqCst) {
                return Ok(());
            }
            // Admission gate: reserve a slot or refuse loudly.
            let admitted = conns.admitted.fetch_add(1, Ordering::SeqCst);
            if admitted >= self.config.max_connections {
                conns.admitted.fetch_sub(1, Ordering::SeqCst);
                self.telemetry.record_refused();
                refuse(stream, &self.config);
                continue;
            }
            let mut queue = conns.queue.lock().unwrap_or_else(|e| e.into_inner());
            queue.push_back(stream);
            drop(queue);
            conns.ready.notify_one();
        }
    }
}

/// Best-effort `ERR` + close for a connection refused by the admission
/// gate.
fn refuse(mut stream: TcpStream, config: &ServerConfig) {
    let _ = stream.set_write_timeout(Some(config.write_timeout));
    let _ = stream.write_all(b"ERR server at capacity, retry later\n");
}

/// One line read through the bounded reader.
enum LineOutcome {
    /// End of stream before any byte of a new line.
    Eof,
    /// A complete line, newline stripped.
    Line(Vec<u8>),
    /// The line exceeded the cap; it was drained through its newline (or
    /// EOF) so the stream stays framing-aligned.
    Oversized,
}

/// Reads one `\n`-terminated line of at most `max` bytes without ever
/// buffering more than `max` bytes of an oversized line.
fn read_line_bounded<R: BufRead>(reader: &mut R, max: usize) -> io::Result<LineOutcome> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let (consumed, saw_newline) = {
            let buf = reader.fill_buf()?;
            if buf.is_empty() {
                return Ok(if line.is_empty() {
                    LineOutcome::Eof
                } else if line.len() > max {
                    LineOutcome::Oversized
                } else {
                    // A torn final line without its newline still counts as
                    // a (malformed or complete) command.
                    LineOutcome::Line(std::mem::take(&mut line))
                });
            }
            match buf.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    let take = (pos + 1).min(buf.len());
                    line.extend_from_slice(&buf[..take]);
                    (take, true)
                }
                None => {
                    line.extend_from_slice(buf);
                    (buf.len(), false)
                }
            }
        };
        reader.consume(consumed);
        if line.len() > max.saturating_add(1) {
            if !saw_newline {
                drain_through_newline(reader)?;
            }
            return Ok(LineOutcome::Oversized);
        }
        if saw_newline {
            while line.last() == Some(&b'\n') || line.last() == Some(&b'\r') {
                line.pop();
            }
            return Ok(LineOutcome::Line(line));
        }
    }
}

/// Discards bytes up to and including the next newline (or EOF).
fn drain_through_newline<R: BufRead>(reader: &mut R) -> io::Result<()> {
    loop {
        let (consumed, done) = {
            let buf = reader.fill_buf()?;
            if buf.is_empty() {
                return Ok(());
            }
            match buf.iter().position(|&b| b == b'\n') {
                Some(pos) => ((pos + 1).min(buf.len()), true),
                None => (buf.len(), false),
            }
        };
        reader.consume(consumed);
        if done {
            return Ok(());
        }
    }
}

/// [`Write`] adapter feeding every byte written into the server's
/// bytes-written counter (lock-free, so counting costs one atomic add per
/// socket write).
struct CountingWriter<W: Write> {
    inner: W,
    written: Arc<Counter>,
}

impl<W: Write> Write for CountingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.written.add(n as u64);
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// The per-connection command loop.  Malformed input is answered with an
/// `ERR` line and the loop continues; I/O errors (including timeouts) end
/// the connection.
fn serve_connection(
    store: &Arc<SynopsisStore>,
    config: &ServerConfig,
    tel: &ServerTelemetry,
    stream: TcpStream,
) -> io::Result<()> {
    stream.set_read_timeout(Some(config.read_timeout))?;
    stream.set_write_timeout(Some(config.write_timeout))?;
    let _ = stream.set_nodelay(true);
    let mut writer = CountingWriter {
        inner: stream.try_clone()?,
        written: tel.bytes_written_handle(),
    };
    let mut reader = BufReader::new(stream);
    loop {
        let line = match read_line_bounded(&mut reader, config.max_line_bytes)? {
            LineOutcome::Eof => return Ok(()),
            LineOutcome::Oversized => {
                write_err(
                    tel,
                    &mut writer,
                    &format!("line exceeds {} bytes", config.max_line_bytes),
                )?;
                continue;
            }
            LineOutcome::Line(line) => line,
        };
        tel.add_bytes_read(line.len() as u64 + 1);
        let command = match proto::parse_command_bytes(&line) {
            Ok(command) => command,
            Err(e) => {
                write_err(tel, &mut writer, &e.message())?;
                continue;
            }
        };
        // Per-verb accounting: the request counts once it parses, and the
        // latency histogram spans execution including the reply write.
        tel.record_request(&command);
        let sw = Stopwatch::start();
        let quit = execute_command(store, config, tel, &mut reader, &mut writer, command)?;
        tel.record_latency(&command, sw);
        if quit {
            return Ok(());
        }
    }
}

/// Executes one parsed command, writing its reply; returns `true` for
/// `QUIT` (close after the reply).
fn execute_command<R: BufRead, W: Write>(
    store: &Arc<SynopsisStore>,
    config: &ServerConfig,
    tel: &ServerTelemetry,
    reader: &mut R,
    writer: &mut W,
    command: Command,
) -> io::Result<bool> {
    match command {
        Command::Ping => writer.write_all(b"OK pong\n")?,
        Command::Est { item } => {
            // A fresh snapshot view per query: captured under brief
            // per-shard read locks, answered with no lock held.
            let value = store.snapshot_view().estimate(item);
            write_ok_value(writer, value)?;
        }
        Command::Range { lo, hi } => {
            let value = store.snapshot_view().range_estimate(lo, hi);
            write_ok_value(writer, value)?;
        }
        Command::Stats { json: false } => {
            let stats = store.stats();
            let reply = format!(
                "OK ingested={} live={} seals={} segments={} split={}\n",
                stats.ingested_records,
                stats.live_records,
                stats.seals,
                stats.segments,
                stats.split_tuples
            );
            writer.write_all(reply.as_bytes())?;
        }
        Command::Stats { json: true } => match store.stats().to_json() {
            Ok(json) => writer.write_all(format!("OK {json}\n").as_bytes())?,
            Err(e) => write_err(tel, writer, &e.to_string())?,
        },
        Command::Metrics { events: false } => {
            // One scrape covers both layers: the server exposition first,
            // then the store's (disjoint series name prefixes).
            let mut text = tel.render();
            text.push_str(&store.render_metrics());
            write_ok_bin(writer, text.as_bytes())?;
        }
        Command::Metrics { events: true } => {
            let mut text = String::new();
            for line in tel.render_events() {
                text.push_str("server ");
                text.push_str(&line);
                text.push('\n');
            }
            for line in store.render_events() {
                text.push_str("store ");
                text.push_str(&line);
                text.push('\n');
            }
            write_ok_bin(writer, text.as_bytes())?;
        }
        Command::Merge { b } => match store.merge_global(b).and_then(|h| h.to_binary()) {
            Ok(bytes) => write_ok_bin(writer, &bytes)?,
            Err(e) => write_store_err(tel, writer, &e)?,
        },
        Command::Snapshot => match store.snapshot() {
            Ok(bytes) => write_ok_bin(writer, &bytes)?,
            Err(e) => write_store_err(tel, writer, &e)?,
        },
        Command::Seal => match store.seal_all() {
            Ok(()) => writer.write_all(b"OK sealed\n")?,
            Err(e) => write_store_err(tel, writer, &e)?,
        },
        Command::Flush => match store.flush() {
            Ok(()) => writer.write_all(b"OK flushed\n")?,
            Err(e) => write_store_err(tel, writer, &e)?,
        },
        Command::Ingest { count } => {
            ingest_batch(store, config, tel, reader, writer, count)?;
        }
        Command::Health => match store.degraded() {
            // Degraded is still `OK`: the probe succeeded and reads keep
            // serving — only the durable write path is down.
            None => writer.write_all(b"OK healthy\n")?,
            Some(cause) => {
                let clean: String = cause
                    .chars()
                    .map(|c| if c.is_control() { ' ' } else { c })
                    .collect();
                writer.write_all(format!("OK degraded {clean}\n").as_bytes())?;
            }
        },
        Command::Quit => {
            writer.write_all(b"OK bye\n")?;
            return Ok(true);
        }
    }
    Ok(false)
}

/// Consumes the `count` declared batch lines, then parses and ingests the
/// whole batch.  All `count` lines are consumed even when the batch is
/// rejected, so the connection stays framing-aligned; nothing from a
/// rejected batch reaches the store.
fn ingest_batch<R: BufRead>(
    store: &Arc<SynopsisStore>,
    config: &ServerConfig,
    tel: &ServerTelemetry,
    reader: &mut R,
    writer: &mut impl Write,
    count: usize,
) -> io::Result<()> {
    if count > config.max_batch {
        return write_err(
            tel,
            writer,
            &format!("INGEST count {count} exceeds the {} cap", config.max_batch),
        );
    }
    let mut text = String::new();
    let mut defect: Option<String> = None;
    for i in 0..count {
        match read_line_bounded(reader, config.max_line_bytes)? {
            LineOutcome::Eof => {
                // Torn batch: the client vanished mid-declaration.  Nothing
                // was ingested; there is no one left to answer.
                return Ok(());
            }
            LineOutcome::Oversized => {
                defect.get_or_insert_with(|| {
                    format!(
                        "ingest line {} exceeds {} bytes",
                        i + 1,
                        config.max_line_bytes
                    )
                });
            }
            LineOutcome::Line(line) => {
                tel.add_bytes_read(line.len() as u64 + 1);
                match String::from_utf8(line) {
                    Ok(record_line) => {
                        text.push_str(&record_line);
                        text.push('\n');
                    }
                    Err(_) => {
                        defect.get_or_insert_with(|| format!("ingest line {} is not UTF-8", i + 1));
                    }
                }
            }
        }
    }
    if let Some(reason) = defect {
        return write_err(tel, writer, &reason);
    }
    let outcome = read_stream(text.as_bytes()).and_then(|records| {
        let n = records.len();
        store.ingest_batch(records).map(|()| n)
    });
    match outcome {
        Ok(n) => writer.write_all(format!("OK {n}\n").as_bytes()),
        Err(e) => write_store_err(tel, writer, &e),
    }
}

/// Routes a store-surfaced error to its `ERR` form.  A degraded store
/// answers with the machine-matchable `ERR DEGRADED <cause>` so clients
/// can tell "this store is read-only now" from a malformed request;
/// everything else ships its display form.
fn write_store_err(tel: &ServerTelemetry, writer: &mut impl Write, e: &PdsError) -> io::Result<()> {
    match e {
        PdsError::Degraded { cause } => write_err(tel, writer, &format!("DEGRADED {cause}")),
        other => write_err(tel, writer, &other.to_string()),
    }
}

fn write_ok_value(writer: &mut impl Write, value: f64) -> io::Result<()> {
    // Rust's shortest round-trip float formatting: parsing the reply text
    // back yields the bit-identical f64.
    writer.write_all(format!("OK {value}\n").as_bytes())
}

fn write_ok_bin(writer: &mut impl Write, bytes: &[u8]) -> io::Result<()> {
    writer.write_all(format!("OK BIN {}\n", bytes.len()).as_bytes())?;
    writer.write_all(bytes)
}

/// One sanitised `ERR` line: the reason can never smuggle a newline.
/// Every command-loop `ERR` reply routes through here, so
/// `pds_server_err_replies_total` counts them all.
fn write_err(tel: &ServerTelemetry, writer: &mut impl Write, reason: &str) -> io::Result<()> {
    tel.record_err_reply();
    let clean: String = reason
        .chars()
        .map(|c| if c.is_control() { ' ' } else { c })
        .collect();
    writer.write_all(format!("ERR {clean}\n").as_bytes())
}
