//! The command-protocol decode surface: one parsed [`Command`] per input
//! line.
//!
//! Kept free of any I/O so the whole surface is a pure
//! `bytes -> Result<Command, ProtoError>` function — the pds-analyze
//! fuzzer mutates it directly (corpus tag `cmd`), and the panic-freedom
//! rule holds it to "arbitrary bytes must parse or reject, never panic".

use std::fmt;

/// Hard cap on accepted command-line length, mirrored by the transport's
/// per-line byte cap: parsing is O(len), so unbounded lines would let one
/// client buy unbounded work.
pub const MAX_COMMAND_BYTES: usize = 4096;

/// One parsed client command (see the crate docs for the wire grammar).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// `PING` — liveness probe.
    Ping,
    /// `EST <item>` — point estimate.
    Est {
        /// Item whose expected frequency is requested.
        item: usize,
    },
    /// `RANGE <lo> <hi>` — inclusive range estimate.
    Range {
        /// Lower end of the inclusive item range.
        lo: usize,
        /// Upper end of the inclusive item range.
        hi: usize,
    },
    /// `STATS [JSON]` — point-in-time store counters, as the classic
    /// `key=value` line or (with `JSON`) the versioned JSON envelope.
    Stats {
        /// `true` for `STATS JSON`: reply with the stable JSON form.
        json: bool,
    },
    /// `MERGE <b>` — global `b`-bucket merged histogram (binary body).
    Merge {
        /// Bucket budget of the merged histogram.
        b: usize,
    },
    /// `INGEST <count>` — the next `count` lines are stream records.
    Ingest {
        /// Number of stream-format lines that follow.
        count: usize,
    },
    /// `SEAL` — seal every live memtable.
    Seal,
    /// `FLUSH` — wait for background seals.
    Flush,
    /// `SNAPSHOT` — seal and serialise the store (binary body).
    Snapshot,
    /// `METRICS [EVENTS]` — telemetry scrape (binary body): the
    /// Prometheus-style text exposition, or (with `EVENTS`) the recent
    /// decoded event lines.
    Metrics {
        /// `true` for `METRICS EVENTS`: reply with the event dump.
        events: bool,
    },
    /// `HEALTH` — store health probe: `OK healthy`, or
    /// `OK degraded <cause>` once the store has entered its sticky
    /// degraded read-only mode.
    Health,
    /// `QUIT` — close the connection.
    Quit,
}

/// A rejected command line: the reason, ready to ship as an `ERR` line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError {
    message: String,
}

impl ProtoError {
    fn new(message: impl Into<String>) -> ProtoError {
        ProtoError {
            message: message.into(),
        }
    }

    /// The reason, sanitised to a single line (control bytes become
    /// spaces) so it can never break the line protocol it travels on.
    pub fn message(&self) -> String {
        self.message
            .chars()
            .map(|c| if c.is_control() { ' ' } else { c })
            .collect()
    }
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message())
    }
}

impl std::error::Error for ProtoError {}

/// Parses one command line (without its trailing newline; a stray `\r` or
/// surrounding whitespace is tolerated).  Total: every input either parses
/// to a [`Command`] or returns a [`ProtoError`] — never a panic.
pub fn parse_command(line: &str) -> Result<Command, ProtoError> {
    if line.len() > MAX_COMMAND_BYTES {
        return Err(ProtoError::new(format!(
            "command line exceeds {MAX_COMMAND_BYTES} bytes"
        )));
    }
    let mut fields = line.split_ascii_whitespace();
    let Some(verb) = fields.next() else {
        return Err(ProtoError::new("empty command"));
    };
    let command = match verb {
        "PING" => Command::Ping,
        "EST" => Command::Est {
            item: arg_usize(&mut fields, "EST", "item")?,
        },
        "RANGE" => Command::Range {
            lo: arg_usize(&mut fields, "RANGE", "lo")?,
            hi: arg_usize(&mut fields, "RANGE", "hi")?,
        },
        "STATS" => Command::Stats {
            json: opt_keyword(&mut fields, "STATS", "JSON")?,
        },
        "MERGE" => Command::Merge {
            b: arg_usize(&mut fields, "MERGE", "b")?,
        },
        "INGEST" => Command::Ingest {
            count: arg_usize(&mut fields, "INGEST", "count")?,
        },
        "SEAL" => Command::Seal,
        "FLUSH" => Command::Flush,
        "SNAPSHOT" => Command::Snapshot,
        "METRICS" => Command::Metrics {
            events: opt_keyword(&mut fields, "METRICS", "EVENTS")?,
        },
        "HEALTH" => Command::Health,
        "QUIT" => Command::Quit,
        other => {
            return Err(ProtoError::new(format!(
                "unknown command {:?} (expected PING, EST, RANGE, STATS, MERGE, \
                 INGEST, SEAL, FLUSH, SNAPSHOT, METRICS, HEALTH or QUIT)",
                truncate_for_error(other)
            )))
        }
    };
    if let Some(extra) = fields.next() {
        return Err(ProtoError::new(format!(
            "trailing field {:?} after {verb}",
            truncate_for_error(extra)
        )));
    }
    Ok(command)
}

/// [`parse_command`] over raw bytes: invalid UTF-8 is a [`ProtoError`],
/// not a panic.  The fuzzer's entry point.
pub fn parse_command_bytes(bytes: &[u8]) -> Result<Command, ProtoError> {
    match std::str::from_utf8(bytes) {
        Ok(text) => parse_command(text.trim_end_matches(['\r', '\n'])),
        Err(_) => Err(ProtoError::new("command line is not valid UTF-8")),
    }
}

/// Accepts an optional bare keyword argument: absent → `false`, exactly
/// `keyword` → `true`, anything else → a [`ProtoError`] naming it.
fn opt_keyword<'a>(
    fields: &mut impl Iterator<Item = &'a str>,
    verb: &str,
    keyword: &str,
) -> Result<bool, ProtoError> {
    match fields.next() {
        None => Ok(false),
        Some(raw) if raw == keyword => Ok(true),
        Some(raw) => Err(ProtoError::new(format!(
            "{verb} takes no argument or {keyword}, got {:?}",
            truncate_for_error(raw)
        ))),
    }
}

fn arg_usize<'a>(
    fields: &mut impl Iterator<Item = &'a str>,
    verb: &str,
    name: &str,
) -> Result<usize, ProtoError> {
    let Some(raw) = fields.next() else {
        return Err(ProtoError::new(format!("{verb} is missing <{name}>")));
    };
    raw.parse().map_err(|_| {
        ProtoError::new(format!(
            "{verb} <{name}> must be an unsigned integer, got {:?}",
            truncate_for_error(raw)
        ))
    })
}

/// Bound quoted user input inside error messages.
fn truncate_for_error(field: &str) -> String {
    const MAX: usize = 32;
    if field.len() <= MAX {
        field.to_string()
    } else {
        let prefix: String = field.chars().take(MAX).collect();
        format!("{prefix}…")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_commands_parse() {
        assert_eq!(parse_command("PING"), Ok(Command::Ping));
        assert_eq!(parse_command("EST 17"), Ok(Command::Est { item: 17 }));
        assert_eq!(
            parse_command("  RANGE 3 250  "),
            Ok(Command::Range { lo: 3, hi: 250 })
        );
        assert_eq!(parse_command("STATS"), Ok(Command::Stats { json: false }));
        assert_eq!(
            parse_command("STATS JSON"),
            Ok(Command::Stats { json: true })
        );
        assert_eq!(parse_command("MERGE 8"), Ok(Command::Merge { b: 8 }));
        assert_eq!(
            parse_command("INGEST 1024"),
            Ok(Command::Ingest { count: 1024 })
        );
        assert_eq!(parse_command("SEAL"), Ok(Command::Seal));
        assert_eq!(parse_command("FLUSH"), Ok(Command::Flush));
        assert_eq!(parse_command("SNAPSHOT"), Ok(Command::Snapshot));
        assert_eq!(
            parse_command("METRICS"),
            Ok(Command::Metrics { events: false })
        );
        assert_eq!(
            parse_command("METRICS EVENTS"),
            Ok(Command::Metrics { events: true })
        );
        assert_eq!(parse_command("HEALTH"), Ok(Command::Health));
        assert_eq!(parse_command("QUIT"), Ok(Command::Quit));
        assert_eq!(
            parse_command_bytes(b"EST 2\r\n"),
            Ok(Command::Est { item: 2 })
        );
    }

    #[test]
    fn malformed_commands_reject_with_single_line_reasons() {
        for bad in [
            "",
            "   ",
            "est 1",
            "EST",
            "EST -1",
            "EST 1 2",
            "EST 99999999999999999999999999",
            "RANGE 1",
            "RANGE a b",
            "MERGE",
            "INGEST 1 2",
            "BOGUS 4",
            "PING extra",
            "QUIT now",
            "STATS BOGUS",
            "STATS JSON extra",
            "METRICS BOGUS",
            "METRICS EVENTS extra",
            "HEALTH now",
        ] {
            let err = parse_command(bad).expect_err(bad);
            assert!(!err.message().is_empty());
            assert!(
                !err.message().contains(['\n', '\r']),
                "error for {bad:?} must stay on one line"
            );
        }
        assert!(parse_command_bytes(&[0xFF, 0xFE, b'\n']).is_err());
        let long = "EST ".to_string() + &"1".repeat(MAX_COMMAND_BYTES);
        assert!(parse_command(&long).is_err());
    }

    #[test]
    fn error_messages_bound_hostile_input() {
        let huge_verb = "A".repeat(2048);
        let err = parse_command(&huge_verb).expect_err("unknown verb");
        assert!(err.message().len() < 200, "{}", err.message().len());
    }
}
