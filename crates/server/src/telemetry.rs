//! Server-side instrumentation: per-verb request counters and latency
//! histograms, connection/byte accounting and a bounded event ring,
//! rendered (together with the store's exposition) by the `METRICS`
//! verb.
//!
//! Unlike the store's knob-gated telemetry, the server always records —
//! the per-request cost is a few relaxed atomic adds, far below the
//! socket round-trip it measures.  All primitives are
//! `pds_core::telemetry` atomics: recording never locks, never
//! allocates, and every path here is held to the crate's panic-freedom
//! rule (guarded indexing, no unwraps).

use std::sync::Arc;

use pds_core::telemetry::{Counter, EventRing, Gauge, LatencyHistogram, Registry, Stopwatch};

use crate::proto::Command;

/// Event-kind tags of the server's [`EventRing`].
mod event {
    /// A connection refused by the admission gate.
    pub const CONN_REFUSED: u64 = 1;
}

/// Label values of the per-verb series, indexed by [`verb_index`].
const VERBS: [&str; 12] = [
    "ping", "est", "range", "stats", "merge", "ingest", "seal", "flush", "snapshot", "metrics",
    "health", "quit",
];

/// The per-verb series index of a parsed command.
fn verb_index(command: &Command) -> usize {
    match command {
        Command::Ping => 0,
        Command::Est { .. } => 1,
        Command::Range { .. } => 2,
        Command::Stats { .. } => 3,
        Command::Merge { .. } => 4,
        Command::Ingest { .. } => 5,
        Command::Seal => 6,
        Command::Flush => 7,
        Command::Snapshot => 8,
        Command::Metrics { .. } => 9,
        Command::Health => 10,
        Command::Quit => 11,
    }
}

/// Events retained for `METRICS EVENTS`.
const EVENT_CAPACITY: usize = 128;

/// All server-side metric series plus the event ring (see the module
/// docs).  One per [`Server`](crate::Server), shared with every worker.
#[derive(Debug)]
pub(crate) struct ServerTelemetry {
    registry: Registry,
    events: EventRing,
    requests: Vec<Arc<Counter>>,
    request_seconds: Vec<Arc<LatencyHistogram>>,
    bytes_read: Arc<Counter>,
    bytes_written: Arc<Counter>,
    connections: Arc<Counter>,
    active: Arc<Gauge>,
    refused: Arc<Counter>,
    timeouts: Arc<Counter>,
    err_replies: Arc<Counter>,
}

impl ServerTelemetry {
    /// Registers every server series (one counter + histogram per verb).
    pub(crate) fn new() -> Self {
        let registry = Registry::new();
        let requests = VERBS
            .iter()
            .map(|verb| registry.counter("pds_server_requests_total", &format!("verb=\"{verb}\"")))
            .collect();
        let request_seconds = VERBS
            .iter()
            .map(|verb| {
                registry.histogram("pds_server_request_seconds", &format!("verb=\"{verb}\""))
            })
            .collect();
        ServerTelemetry {
            requests,
            request_seconds,
            bytes_read: registry.counter("pds_server_bytes_read_total", ""),
            bytes_written: registry.counter("pds_server_bytes_written_total", ""),
            connections: registry.counter("pds_server_connections_total", ""),
            active: registry.gauge("pds_server_connections_active", ""),
            refused: registry.counter("pds_server_connections_refused_total", ""),
            timeouts: registry.counter("pds_server_timeouts_total", ""),
            err_replies: registry.counter("pds_server_err_replies_total", ""),
            events: EventRing::new(EVENT_CAPACITY),
            registry,
        }
    }

    /// A handle to the bytes-written counter, for wrapping a connection's
    /// writer in the transport's `CountingWriter`.
    pub(crate) fn bytes_written_handle(&self) -> Arc<Counter> {
        Arc::clone(&self.bytes_written)
    }

    /// One parsed command about to execute; bump its verb counter.
    pub(crate) fn record_request(&self, command: &Command) {
        if let Some(counter) = self.requests.get(verb_index(command)) {
            counter.inc();
        }
    }

    /// The execution latency of one command (reply written included).
    pub(crate) fn record_latency(&self, command: &Command, sw: Stopwatch) {
        if let Some(hist) = self.request_seconds.get(verb_index(command)) {
            hist.observe(sw);
        }
    }

    /// `n` request bytes consumed off a connection.
    pub(crate) fn add_bytes_read(&self, n: u64) {
        self.bytes_read.add(n);
    }

    /// One connection admitted and handed to a worker.
    pub(crate) fn record_admitted(&self) {
        self.connections.inc();
        self.active.add(1.0);
    }

    /// A served connection finished (cleanly or not); a timeout error is
    /// counted separately.
    pub(crate) fn record_closed(&self, error: Option<std::io::ErrorKind>) {
        self.active.add(-1.0);
        if matches!(
            error,
            Some(std::io::ErrorKind::TimedOut) | Some(std::io::ErrorKind::WouldBlock)
        ) {
            self.timeouts.inc();
        }
    }

    /// One connection refused by the admission gate.
    pub(crate) fn record_refused(&self) {
        self.refused.inc();
        self.events.push(event::CONN_REFUSED, 0, 0, 0);
    }

    /// One `ERR` reply line written.
    pub(crate) fn record_err_reply(&self) {
        self.err_replies.inc();
    }

    /// The server half of the `METRICS` exposition.
    pub(crate) fn render(&self) -> String {
        self.registry.render()
    }

    /// The retained server events, oldest first, one decoded line each.
    pub(crate) fn render_events(&self) -> Vec<String> {
        self.events.dump(|kind, a, b, c| match kind {
            event::CONN_REFUSED => "connection-refused at-capacity".to_string(),
            other => format!("unknown-event kind={other} a={a} b={b} c={c}"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_verb_series_count_independently() {
        let tel = ServerTelemetry::new();
        tel.record_request(&Command::Ping);
        tel.record_request(&Command::Est { item: 1 });
        tel.record_request(&Command::Est { item: 2 });
        let sw = Stopwatch::start();
        tel.record_latency(&Command::Est { item: 1 }, sw);
        tel.add_bytes_read(10);
        tel.record_admitted();
        tel.record_closed(Some(std::io::ErrorKind::TimedOut));
        tel.record_refused();
        tel.record_err_reply();
        let text = tel.render();
        assert!(text.contains("pds_server_requests_total{verb=\"ping\"} 1"));
        assert!(text.contains("pds_server_requests_total{verb=\"est\"} 2"));
        assert!(text.contains("pds_server_requests_total{verb=\"quit\"} 0"));
        assert!(text.contains("pds_server_request_seconds_count{verb=\"est\"} 1"));
        assert!(text.contains("pds_server_bytes_read_total 10"));
        assert!(text.contains("pds_server_connections_total 1"));
        assert!(text.contains("pds_server_connections_active 0"));
        assert!(text.contains("pds_server_connections_refused_total 1"));
        assert!(text.contains("pds_server_timeouts_total 1"));
        assert!(text.contains("pds_server_err_replies_total 1"));
        let events = tel.render_events();
        assert_eq!(events.len(), 1);
        assert!(events[0].contains("connection-refused"));
    }

    #[test]
    fn every_command_maps_to_a_registered_verb() {
        let commands = [
            Command::Ping,
            Command::Est { item: 0 },
            Command::Range { lo: 0, hi: 1 },
            Command::Stats { json: false },
            Command::Merge { b: 4 },
            Command::Ingest { count: 1 },
            Command::Seal,
            Command::Flush,
            Command::Snapshot,
            Command::Metrics { events: false },
            Command::Health,
            Command::Quit,
        ];
        let mut seen = [false; VERBS.len()];
        for command in &commands {
            let i = verb_index(command);
            assert!(!seen[i], "verb index {i} mapped twice");
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s), "every verb label is reachable");
    }
}
