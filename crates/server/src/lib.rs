//! # pds-server
//!
//! A concurrent TCP front-end serving approximate-query-processing reads
//! (and ingest) over a [`SynopsisStore`] — the network surface on top of
//! the panic-free query path: reads execute against immutable
//! [`SnapshotView`]s (`Arc`-cloned segment handles plus memtable copies
//! captured under one brief read lock per shard), so queries never block
//! ingest and never hold a shard lock across socket I/O.
//!
//! ## Protocol
//!
//! Line-oriented text commands, one per line (`\n`-terminated; a trailing
//! `\r` is tolerated).  Fields are separated by ASCII whitespace and verbs
//! are case-sensitive upper-case.  Every command is answered by exactly one
//! response line — optionally followed by a raw binary body — so clients
//! can pipeline freely:
//!
//! | Command | Reply | Meaning |
//! |---|---|---|
//! | `PING` | `OK pong` | liveness probe |
//! | `EST <item>` | `OK <f64>` | expected frequency of one item, from a fresh snapshot view |
//! | `RANGE <lo> <hi>` | `OK <f64>` | expected total frequency over the inclusive range |
//! | `STATS` | `OK ingested=<u64> live=<u64> seals=<u64> segments=<n> split=<u64>` | point-in-time counters |
//! | `STATS JSON` | `OK {"version":1,"stats":{…}}` | the same counters as the versioned single-line JSON envelope ([`StoreStats::to_json`]) |
//! | `MERGE <b>` | `OK BIN <len>` + `<len>` bytes | global `b`-bucket merged histogram, `PDSH` binio envelope |
//! | `SNAPSHOT` | `OK BIN <len>` + `<len>` bytes | seal everything and serialise, `PDST` binio envelope |
//! | `INGEST <count>` | `OK <records>` | the next `count` lines are stream-format records (see below) |
//! | `SEAL` | `OK sealed` | seal every live memtable |
//! | `FLUSH` | `OK flushed` | wait for background seals, surface their errors |
//! | `METRICS` | `OK BIN <len>` + `<len>` bytes | telemetry scrape: Prometheus-style text exposition, server + store series |
//! | `METRICS EVENTS` | `OK BIN <len>` + `<len>` bytes | recent notable events, one `server …`/`store …` line each, oldest first |
//! | `HEALTH` | `OK healthy` \| `OK degraded <cause>` | store health probe (degraded = sticky read-only mode, see below) |
//! | `QUIT` | `OK bye` | close the connection |
//!
//! Replies beginning `OK` are successes; anything the server cannot parse
//! or execute is answered with a single `ERR <reason>` line and the
//! **connection survives** — a malformed, oversized, or torn command can
//! cost at most its own batch, never the process or the session.  Float
//! replies use Rust's shortest round-trip formatting, so parsing the text
//! back yields bit-identical values to direct [`SynopsisStore`] calls.
//!
//! **Out-of-domain reads are zero, not errors.**  `EST <item>` with
//! `item` at or past the domain size, and `RANGE <lo> <hi>` whose window
//! misses the domain entirely (`hi < lo`, or `lo` past the last item),
//! answer the literal line `OK 0` — a well-formed question about items
//! the store doesn't track has zero expected mass.  An in-domain `lo`
//! with an oversized `hi` is clamped to the last item and answers the
//! tail normally.  Clients may match the `OK 0` text; the contract is
//! pinned by the integration suite and shared bit-for-bit with direct
//! [`SynopsisStore`] calls (both route through the same `clamp_range`).
//!
//! **`MERGE` is served from the merged-synopsis cache when possible.**
//! The store memoises the most recent global merge keyed on its internal
//! version counter (bumped at every structural commit: a sealed-segment
//! install or a compaction swap) plus the bucket budget `b`.  Repeating
//! `MERGE <b>` against a structurally unchanged store replays the cached
//! histogram — byte-identical body, no DP recomputation — and any seal
//! or compaction invalidates the entry, so a reply is always exactly
//! what a fresh merge would produce.  The wire shape never changes;
//! cache effectiveness is visible as
//! `pds_store_merge_cache_{hits,misses}_total` in `METRICS` scrapes.
//!
//! ## Degraded read-only mode
//!
//! When the store's durable write path fails persistently (a WAL, segment
//! blob or manifest write still failing after its bounded retries), the
//! store flips into **sticky degraded read-only mode** rather than
//! crashing or silently dropping data: every acknowledged record stays
//! queryable, and reads (`EST`, `RANGE`, `STATS`, `MERGE`, `METRICS`)
//! keep serving.  The server surfaces the mode two ways:
//!
//! * `HEALTH` answers `OK degraded <cause>` (still `OK` — the probe
//!   itself succeeded; only the write path is down).
//! * Write verbs (`INGEST`, `SEAL`, `FLUSH`, `SNAPSHOT`) answer
//!   `ERR DEGRADED <cause>` — the machine-matchable prefix lets clients
//!   tell "this store is read-only now, fail over" from a bad request.
//!
//! The mode is cleared only by restarting the server over the reopened
//! directory (recovery replays the durable state).  The store-side
//! `pds_store_degraded` gauge and `io-error`/`degraded` events appear in
//! `METRICS` / `METRICS EVENTS` scrapes.
//!
//! `INGEST <count>` is followed by exactly `count` lines in the existing
//! stream text format of `pds_core::io` (`b <item> <prob>`,
//! `x <item>:<prob> ...`, `v <item> <freq>:<prob> ...`, `#` comments and
//! blank lines ignored).  The batch is parsed **after** all `count` lines
//! are consumed, so a malformed record rejects the whole batch with `ERR`
//! while the connection stays framing-aligned; nothing from a rejected
//! batch is ingested.  Bulk responses (`MERGE`, `SNAPSHOT`) reuse the
//! workspace's versioned binio envelopes verbatim — the `<len>` bytes
//! after `OK BIN <len>` are exactly what `Histogram::from_binary` /
//! `SynopsisStore::from_binary` accept.
//!
//! ## Concurrency model
//!
//! Connections are multiplexed over a fixed worker pool sized by
//! `pds_core::pool::num_threads()` — the same `PDS_THREADS` /
//! `set_num_threads` resolution every other parallel path in the
//! workspace uses.  An admission gate caps concurrently admitted
//! connections ([`ServerConfig::max_connections`]); excess connections are
//! answered `ERR server at capacity` and closed instead of queueing
//! unboundedly.  Every connection carries read and write timeouts, and a
//! per-line byte cap bounds memory per connection.
//!
//! The whole crate is covered by the pds-analyze **panic-freedom** rule
//! (and lock-discipline): no `unwrap`/`expect`/indexing on the serving
//! path, no lock held across I/O — hostile input degrades to `ERR` lines.
//!
//! ## Observability
//!
//! The server keeps its own always-on telemetry (`pds_core::telemetry`
//! atomics — recording never locks or allocates): per-verb request
//! counters and log₂-bucketed latency histograms
//! (`pds_server_requests_total{verb="…"}`,
//! `pds_server_request_seconds…{verb="…"}` — latency spans execution
//! including the reply write), bytes read/written, connections
//! total/active/refused, timeout-terminated connections, and `ERR` reply
//! lines written by the command loop (capacity refusals are counted under
//! `pds_server_connections_refused_total` instead).  `METRICS`
//! concatenates this server exposition with
//! [`SynopsisStore::render_metrics`] — one scrape covers both layers —
//! and `METRICS EVENTS` dumps the bounded event rings (each line
//! prefixed `server ` or `store `, then `t=<secs-since-start>` and the
//! decoded event).  Store-side recording obeys the
//! `StoreConfig::telemetry` knob and is bit-invisible to query results;
//! see the pds-store crate docs.
//!
//! [`SynopsisStore`]: pds_store::SynopsisStore
//! [`SynopsisStore::render_metrics`]: pds_store::SynopsisStore::render_metrics
//! [`StoreStats::to_json`]: pds_store::StoreStats::to_json
//! [`SnapshotView`]: pds_store::SnapshotView

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod proto;
mod server;
mod telemetry;

pub use server::{Server, ServerConfig, ServerHandle};
