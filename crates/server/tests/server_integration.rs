//! Integration suite for the TCP front-end: concurrent clients querying
//! during ingest answer bitwise-identically to direct library calls, and
//! malformed / oversized / torn input costs a protocol error line, never
//! the connection (let alone the process).

use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use pds_core::io::{read_stream, write_stream};
use pds_core::stream::{basic_stream, BasicStreamConfig, StreamRecord};
use pds_core::{pool, ErrorMetric};
use pds_histogram::Histogram;
use pds_server::{Server, ServerConfig, ServerHandle};
use pds_store::{PartitionSpec, StoreConfig, SynopsisKind, SynopsisStore};

fn store_config(n: usize, parts: usize, threshold: usize) -> StoreConfig {
    StoreConfig::new(
        PartitionSpec::uniform(n, parts).unwrap(),
        threshold,
        8,
        SynopsisKind::Histogram(ErrorMetric::Sse),
    )
}

/// A server bound to an ephemeral port, serving on its own thread; shut
/// down and joined on drop so no test leaks a listener.
struct RunningServer {
    handle: ServerHandle,
    thread: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

impl RunningServer {
    fn start(store: Arc<SynopsisStore>, config: ServerConfig) -> RunningServer {
        let server = Server::bind(store, ("127.0.0.1", 0), config).expect("bind");
        let handle = server.handle();
        let thread = std::thread::spawn(move || server.serve());
        RunningServer {
            handle,
            thread: Some(thread),
        }
    }
}

impl Drop for RunningServer {
    fn drop(&mut self) {
        self.handle.shutdown();
        if let Some(thread) = self.thread.take() {
            thread.join().expect("server thread").expect("serve");
        }
    }
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(handle: &ServerHandle) -> Client {
        let stream = TcpStream::connect(handle.addr()).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone")),
            writer: stream,
        }
    }

    fn send(&mut self, line: &str) {
        let mut framed = Vec::with_capacity(line.len() + 1);
        framed.extend_from_slice(line.as_bytes());
        framed.push(b'\n');
        self.writer.write_all(&framed).expect("send");
    }

    fn send_raw(&mut self, bytes: &[u8]) {
        self.writer.write_all(bytes).expect("send raw");
    }

    fn recv(&mut self) -> String {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("recv");
        assert!(n > 0, "server closed the connection unexpectedly");
        line.trim_end_matches(['\r', '\n']).to_string()
    }

    /// Sends one command and returns its reply line.
    fn cmd(&mut self, line: &str) -> String {
        self.send(line);
        self.recv()
    }

    /// Reads the `<len>` raw bytes after an `OK BIN <len>` reply.
    fn recv_bin(&mut self, reply: &str) -> Vec<u8> {
        let len: usize = reply
            .strip_prefix("OK BIN ")
            .unwrap_or_else(|| panic!("not a binary reply: {reply}"))
            .parse()
            .expect("length");
        let mut bytes = vec![0u8; len];
        self.reader.read_exact(&mut bytes).expect("binary body");
        bytes
    }

    fn quit(mut self) {
        assert_eq!(self.cmd("QUIT"), "OK bye");
    }
}

fn ok_value(reply: &str) -> f64 {
    reply
        .strip_prefix("OK ")
        .unwrap_or_else(|| panic!("not an OK reply: {reply}"))
        .parse()
        .expect("float reply")
}

/// Deterministic workload shared by server-vs-direct comparisons.
fn workload(len: usize, seed: u64, n: usize) -> Vec<StreamRecord> {
    basic_stream(BasicStreamConfig { n, skew: 0.6, seed })
        .take(len)
        .collect()
}

/// Encodes a batch in the stream text format and counts its lines.
fn stream_text(records: &[StreamRecord]) -> (String, usize) {
    let mut bytes = Vec::new();
    write_stream(records.iter(), &mut bytes).expect("encode batch");
    let text = String::from_utf8(bytes).expect("stream text is UTF-8");
    let lines = text.lines().count();
    (text, lines)
}

/// Ingests one batch through an open connection and asserts its `OK`.
fn ingest_over(client: &mut Client, batch: &[StreamRecord]) -> String {
    let (text, lines) = stream_text(batch);
    client.send(&format!("INGEST {lines}"));
    client.send_raw(text.as_bytes());
    let reply = client.recv();
    assert_eq!(reply, format!("OK {}", batch.len()));
    text
}

#[test]
fn basic_commands_round_trip_bitwise() {
    let store = Arc::new(SynopsisStore::new(store_config(64, 4, 1 << 20)).unwrap());
    store.ingest_batch(workload(200, 7, 64)).unwrap();
    let server = RunningServer::start(Arc::clone(&store), ServerConfig::default());
    let mut client = Client::connect(&server.handle);

    assert_eq!(client.cmd("PING"), "OK pong");
    for item in [0usize, 1, 17, 63, 64, 1000] {
        let via_server = ok_value(&client.cmd(&format!("EST {item}")));
        assert_eq!(
            via_server.to_bits(),
            store.estimate(item).to_bits(),
            "EST {item} must be bitwise-equal to the direct call"
        );
    }
    for (lo, hi) in [(0usize, 63usize), (5, 5), (10, 3), (40, 10_000)] {
        let via_server = ok_value(&client.cmd(&format!("RANGE {lo} {hi}")));
        assert_eq!(via_server.to_bits(), store.range_estimate(lo, hi).to_bits());
    }
    let stats = store.stats();
    assert_eq!(
        client.cmd("STATS"),
        format!(
            "OK ingested={} live={} seals={} segments={} split={}",
            stats.ingested_records,
            stats.live_records,
            stats.seals,
            stats.segments,
            stats.split_tuples
        )
    );
    assert_eq!(client.cmd("SEAL"), "OK sealed");
    assert_eq!(client.cmd("FLUSH"), "OK flushed");
    client.quit();
}

/// Out-of-domain and empty-window reads are well-formed questions whose
/// answer is zero mass — the wire contract is the **literal line**
/// `OK 0`, never `ERR`, and clients are entitled to match the text.
/// This pins the `clamp_range` contract (store and snapshot view share
/// it) at the protocol boundary.
#[test]
fn out_of_domain_reads_answer_the_literal_ok_zero_line() {
    let store = Arc::new(SynopsisStore::new(store_config(64, 4, 1 << 20)).unwrap());
    store.ingest_batch(workload(500, 13, 64)).unwrap();
    let server = RunningServer::start(Arc::clone(&store), ServerConfig::default());
    let mut client = Client::connect(&server.handle);

    for cmd in [
        "EST 64",                       // first item past the domain
        "EST 18446744073709551615",     // u64::MAX parses, answers zero
        "RANGE 64 99",                  // window entirely past the domain
        "RANGE 10 3",                   // inverted window
        "RANGE 63 0",                   // inverted at the domain edge
        "RANGE 18446744073709551615 0", // hostile lo, inverted
    ] {
        assert_eq!(client.cmd(cmd), "OK 0", "{cmd} must answer literally");
    }
    // Clamping is one-sided: an in-domain `lo` with an oversized `hi`
    // answers the full tail, not zero.
    let clamped = ok_value(&client.cmd("RANGE 0 18446744073709551615"));
    assert_eq!(clamped.to_bits(), store.range_estimate(0, 63).to_bits());
    assert!(clamped > 0.0, "ingested mass must show through the clamp");
    client.quit();
}

#[test]
fn ingest_through_the_server_matches_direct_ingest_bitwise() {
    let store = Arc::new(SynopsisStore::new(store_config(128, 4, 64)).unwrap());
    let mirror = SynopsisStore::new(store_config(128, 4, 64)).unwrap();
    let server = RunningServer::start(Arc::clone(&store), ServerConfig::default());
    let mut client = Client::connect(&server.handle);

    let records = workload(3_000, 11, 128);
    for batch in records.chunks(257) {
        let text = ingest_over(&mut client, batch);
        // The mirror ingests exactly what the server decoded: the same
        // text, through the same stream parser.
        mirror
            .ingest_batch(read_stream(text.as_bytes()).unwrap())
            .unwrap();
    }
    for (lo, hi) in [(0usize, 127usize), (3, 90), (64, 64), (100, 5_000)] {
        let via_server = ok_value(&client.cmd(&format!("RANGE {lo} {hi}")));
        assert_eq!(
            via_server.to_bits(),
            mirror.range_estimate(lo, hi).to_bits(),
            "server ingest must be indistinguishable from direct ingest"
        );
    }
    for item in 0..128usize {
        let via_server = ok_value(&client.cmd(&format!("EST {item}")));
        assert_eq!(via_server.to_bits(), mirror.estimate(item).to_bits());
    }
    client.quit();
}

#[test]
fn concurrent_clients_query_during_ingest_then_match_direct_calls() {
    let store = Arc::new(SynopsisStore::new(store_config(256, 8, 128)).unwrap());
    let mirror = SynopsisStore::new(store_config(256, 8, 128)).unwrap();
    let server = RunningServer::start(Arc::clone(&store), ServerConfig::default());
    // One worker must stay free for the ingest connection, or the query
    // clients would pin every worker until `done` — which only ingest can
    // set.  On a single-worker pool the test degrades to ingest-then-query.
    let queriers = pool::num_threads().max(1).saturating_sub(1).min(3);
    let done = AtomicBool::new(false);

    let records = workload(20_000, 23, 256);
    std::thread::scope(|scope| {
        // Concurrent query clients: replies must always be well-formed,
        // finite and non-negative while ingest is racing.
        for t in 0..queriers {
            let (handle, done) = (&server.handle, &done);
            scope.spawn(move || {
                let mut client = Client::connect(handle);
                let mut i = t;
                while !done.load(Ordering::SeqCst) {
                    let lo = (i * 37) % 256;
                    let hi = lo + (i % 64);
                    let value = ok_value(&client.cmd(&format!("RANGE {lo} {hi}")));
                    assert!(value.is_finite() && value >= 0.0, "bad estimate {value}");
                    let point = ok_value(&client.cmd(&format!("EST {}", (i * 13) % 300)));
                    assert!(point.is_finite() && point >= 0.0);
                    i += 1;
                }
                client.quit();
            });
        }
        // One ingest client streams the whole workload in batches.
        let mut ingest = Client::connect(&server.handle);
        for batch in records.chunks(512) {
            ingest_over(&mut ingest, batch);
        }
        ingest.quit();
        done.store(true, Ordering::SeqCst);
    });

    // Quiesced: the served store must now answer exactly like a store a
    // direct caller fed the same batches.
    for batch in records.chunks(512) {
        let (text, _) = stream_text(batch);
        mirror
            .ingest_batch(read_stream(text.as_bytes()).unwrap())
            .unwrap();
    }
    let mut client = Client::connect(&server.handle);
    for step in 0..1_000usize {
        let lo = (step * 3) % 256;
        let hi = lo + step % 41;
        let via_server = ok_value(&client.cmd(&format!("RANGE {lo} {hi}")));
        assert_eq!(
            via_server.to_bits(),
            mirror.range_estimate(lo, hi).to_bits(),
            "RANGE {lo} {hi} diverged after concurrent ingest"
        );
    }
    client.quit();
}

#[test]
fn merge_and_snapshot_bulk_responses_decode_and_match_direct() {
    let store = Arc::new(SynopsisStore::new(store_config(64, 4, 32)).unwrap());
    let mirror = SynopsisStore::new(store_config(64, 4, 32)).unwrap();
    let records = workload(1_000, 31, 64);
    store.ingest_batch(records.clone()).unwrap();
    mirror.ingest_batch(records).unwrap();
    let server = RunningServer::start(Arc::clone(&store), ServerConfig::default());
    let mut client = Client::connect(&server.handle);

    assert_eq!(client.cmd("SEAL"), "OK sealed");
    mirror.seal_all().unwrap();

    let reply = client.cmd("MERGE 6");
    let merged_bytes = client.recv_bin(&reply);
    let direct = mirror.merge_global(6).unwrap();
    assert_eq!(merged_bytes, direct.to_binary().unwrap());
    let decoded = Histogram::from_binary(&merged_bytes).unwrap();
    assert_eq!(decoded.num_buckets(), direct.num_buckets());

    // A repeated MERGE on the unchanged store serves from the store's
    // merged-synopsis cache: byte-identical body, and the cache-hit
    // counter moves in the METRICS scrape.  The wire shape is unchanged —
    // clients cannot tell a hit from a recomputation except by speed.
    let reply = client.cmd("MERGE 6");
    assert_eq!(client.recv_bin(&reply), merged_bytes);
    let scrape = client.cmd("METRICS");
    let text = String::from_utf8(client.recv_bin(&scrape)).unwrap();
    assert!(
        text.lines()
            .any(|l| l.starts_with("pds_store_merge_cache_hits_total ") && !l.ends_with(" 0")),
        "repeat MERGE must register a merge-cache hit:\n{text}"
    );

    // The merge edge cases surface as protocol errors, not panics.
    assert!(client.cmd("MERGE 0").starts_with("ERR "));
    assert!(client.cmd("MERGE 99999999").starts_with("ERR "));

    let reply = client.cmd("SNAPSHOT");
    let snapshot_bytes = client.recv_bin(&reply);
    let reopened = SynopsisStore::from_binary(&snapshot_bytes).unwrap();
    assert_eq!(
        reopened.range_estimate(0, 63).to_bits(),
        mirror.range_estimate(0, 63).to_bits()
    );
    client.quit();
}

#[test]
fn malformed_oversized_and_torn_input_never_kills_the_process() {
    let store = Arc::new(SynopsisStore::new(store_config(64, 4, 1 << 20)).unwrap());
    let config = ServerConfig::default();
    let max_line = config.max_line_bytes;
    let server = RunningServer::start(Arc::clone(&store), config);
    let mut client = Client::connect(&server.handle);

    // Malformed commands: one ERR each, the connection survives them all.
    for bad in [
        "FROB 12",
        "est 1",
        "EST",
        "EST notanumber",
        "EST 1 2 3",
        "RANGE 4",
        "MERGE -3",
        "INGEST",
        "",
        "   ",
    ] {
        let reply = client.cmd(bad);
        assert!(reply.starts_with("ERR "), "{bad:?} -> {reply}");
    }
    // Non-UTF-8 garbage.
    client.send_raw(&[0xC0, 0xAF, 0xFE, b'\n']);
    assert!(client.recv().starts_with("ERR "));
    // Oversized command line: discarded, answered, survived.
    let huge = "EST ".to_string() + &"9".repeat(max_line * 2);
    let reply = client.cmd(&huge);
    assert!(reply.starts_with("ERR "), "{reply}");
    assert_eq!(client.cmd("PING"), "OK pong");

    // A batch with a malformed record line is wholly rejected with the
    // framing kept: nothing reaches the store, the next command works.
    client.send("INGEST 3");
    client.send("b 1 0.5");
    client.send("b 2 not-a-probability");
    client.send("b 3 0.25");
    assert!(client.recv().starts_with("ERR "));
    assert!(client.cmd("STATS").contains("ingested=0"));
    // An oversized INGEST declaration is refused before reading anything.
    assert!(client.cmd("INGEST 999999999999").starts_with("ERR "));
    // A valid batch after all of the above still works.
    client.send("INGEST 2");
    client.send("b 1 0.5");
    client.send("b 2 0.25");
    assert_eq!(client.recv(), "OK 2");
    client.quit();

    // Torn batch: a client dies mid-INGEST; nothing of it is ingested and
    // the server keeps serving everyone else.
    let mut torn = Client::connect(&server.handle);
    torn.send("INGEST 5");
    torn.send("b 7 0.5");
    drop(torn);
    let mut after = Client::connect(&server.handle);
    assert!(after.cmd("STATS").contains("ingested=2"));
    assert_eq!(after.cmd("PING"), "OK pong");
    after.quit();
}

/// Connects and classifies the outcome: `Some(client)` when admitted (no
/// unsolicited reply arrives), `None` when refused by the admission gate.
fn probe(handle: &ServerHandle) -> Option<Client> {
    let stream = TcpStream::connect(handle.addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    stream
        .set_read_timeout(Some(Duration::from_millis(250)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    match reader.fill_buf() {
        // A bare close or the refusal line arrived unprompted.
        Ok([]) => None,
        Ok(_) => {
            let mut line = String::new();
            reader.read_line(&mut line).expect("refusal line");
            assert!(line.starts_with("ERR server at capacity"), "{line}");
            None
        }
        // Silence for 250ms: the connection was admitted and is waiting
        // for a command.
        Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
            stream
                .set_read_timeout(Some(Duration::from_secs(60)))
                .unwrap();
            Some(Client {
                reader,
                writer: stream,
            })
        }
        Err(e) => panic!("probe read failed: {e}"),
    }
}

#[test]
fn admission_gate_refuses_connections_over_the_cap() {
    let store = Arc::new(SynopsisStore::new(store_config(64, 4, 1 << 20)).unwrap());
    let config = ServerConfig {
        max_connections: 1,
        ..ServerConfig::default()
    };
    let server = RunningServer::start(Arc::clone(&store), config);
    let mut first = Client::connect(&server.handle);
    assert_eq!(first.cmd("PING"), "OK pong");

    // The only slot is taken: the next connection is answered with the
    // capacity ERR and closed, not queued forever.
    let mut second = Client::connect(&server.handle);
    assert!(second.recv().starts_with("ERR server at capacity"));
    let mut end = String::new();
    assert_eq!(second.reader.read_line(&mut end).expect("eof"), 0);
    drop(second);

    // Releasing the slot readmits new connections.
    first.quit();
    for _ in 0..100 {
        if let Some(mut readmitted) = probe(&server.handle) {
            assert_eq!(readmitted.cmd("PING"), "OK pong");
            readmitted.quit();
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("the admission slot was never released");
}

#[test]
fn metrics_scrape_and_stats_json_cover_both_layers() {
    let store = Arc::new(SynopsisStore::new(store_config(64, 4, 32)).unwrap());
    let server = RunningServer::start(Arc::clone(&store), ServerConfig::default());
    let mut client = Client::connect(&server.handle);

    // Drive every instrumented path at least once: ingest (sealing some
    // memtables via the low threshold), queries, an ERR reply.
    ingest_over(&mut client, &workload(100, 3, 64));
    assert_eq!(client.cmd("SEAL"), "OK sealed");
    assert_eq!(client.cmd("FLUSH"), "OK flushed");
    let _ = ok_value(&client.cmd("EST 7"));
    let _ = ok_value(&client.cmd("RANGE 0 63"));
    assert!(client.cmd("BOGUS").starts_with("ERR "));

    // STATS JSON: the versioned envelope, parseable back into StoreStats.
    let reply = client.cmd("STATS JSON");
    let json = reply.strip_prefix("OK ").expect("OK <json> reply");
    assert!(json.starts_with("{\"version\":1,"), "{json}");
    let parsed = pds_store::StoreStats::from_json(json).expect("parse STATS JSON");
    assert_eq!(parsed, store.stats());

    // METRICS: one scrape covers server and store series.
    let reply = client.cmd("METRICS");
    let text = String::from_utf8(client.recv_bin(&reply)).expect("exposition is UTF-8");
    for needle in [
        "pds_server_requests_total{verb=\"ingest\"} 1",
        "pds_server_requests_total{verb=\"est\"} 1",
        "pds_server_requests_total{verb=\"stats\"} 1",
        "pds_server_request_seconds_count{verb=\"range\"} 1",
        "pds_server_err_replies_total 1",
        "pds_server_connections_total 1",
        "pds_server_connections_active 1",
        "# TYPE pds_server_request_seconds histogram",
        "pds_store_telemetry_enabled 1",
        "pds_store_ingested_records_total 100",
        // One client batch fans out to one per-shard commit group per
        // partition it touches — all 4, with 100 records over 64 items.
        "pds_store_ingest_batches_total 4",
        "# TYPE pds_store_query_seconds histogram",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }
    let series: std::collections::HashSet<&str> = text
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
        .filter_map(|l| l.split(['{', ' ']).next())
        .collect();
    assert!(
        series.len() >= 25,
        "a scrape must expose at least 25 distinct series, got {}: {series:?}",
        series.len()
    );

    // METRICS EVENTS: the seal surfaced as a store event line.
    let reply = client.cmd("METRICS EVENTS");
    let events = String::from_utf8(client.recv_bin(&reply)).expect("events are UTF-8");
    assert!(
        events
            .lines()
            .any(|l| l.starts_with("store ") && l.contains("seal-installed")),
        "no seal-installed event in:\n{events}"
    );
    client.quit();
}
