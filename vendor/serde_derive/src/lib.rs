//! `#[derive(Serialize, Deserialize)]` for the vendored serde shim.
//!
//! The container has no registry access, so this proc-macro crate parses the
//! derive input by walking the raw `TokenStream` (no `syn`/`quote`) and emits
//! impls of the shim's `serde::Serialize` / `serde::Deserialize` traits.
//!
//! Supported shapes — exactly what this workspace derives on:
//!
//! * structs with named fields;
//! * enums with unit variants, newtype/tuple variants, and struct variants.
//!
//! Generics and `#[serde(...)]` attributes are not supported and produce a
//! compile error naming this file, so a future change that needs them fails
//! loudly instead of silently misbehaving.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    /// Named fields, in declaration order.
    Struct { name: String, fields: Vec<String> },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    /// Number of unnamed fields.
    Tuple(usize),
    /// Named fields, in declaration order.
    Struct(Vec<String>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let body = match &shape {
        Shape::Struct { name, fields } => serialize_struct(name, fields),
        Shape::Enum { name, variants } => serialize_enum(name, variants),
    };
    body.parse().expect("serde_derive generated invalid Rust")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let body = match &shape {
        Shape::Struct { name, fields } => deserialize_struct(name, fields),
        Shape::Enum { name, variants } => deserialize_enum(name, variants),
    };
    body.parse().expect("serde_derive generated invalid Rust")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_shape(input: TokenStream) -> Shape {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attributes_and_visibility(&tokens, &mut i);

    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, got {other:?}"),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive (vendored shim): generic types are not supported; derive on `{name}` by hand or extend vendor/serde_derive");
    }

    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("serde_derive (vendored shim): tuple structs are not supported; `{name}` needs named fields")
            }
            Some(_) => i += 1,
            None => panic!("serde_derive: no body found for `{name}`"),
        }
    };

    match keyword.as_str() {
        "struct" => Shape::Struct {
            name,
            fields: parse_named_fields(body),
        },
        "enum" => Shape::Enum {
            name,
            variants: parse_variants(body),
        },
        other => panic!("serde_derive: cannot derive on `{other}`"),
    }
}

fn skip_attributes_and_visibility(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            // `#[...]` attribute (doc comments included).
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                // `pub(crate)` / `pub(super)` etc.
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Parses `name: Type, ...` field lists, returning the field names.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut i);
        let Some(TokenTree::Ident(field)) = tokens.get(i) else {
            panic!("serde_derive: expected field name, got {:?}", tokens.get(i));
        };
        fields.push(field.to_string());
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected `:` after field name, got {other:?}"),
        }
        skip_type(&tokens, &mut i);
        // Optional trailing comma.
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    fields
}

/// Advances past one type, stopping at a top-level `,` (angle brackets are
/// tracked by depth; grouped tokens are atomic).
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0usize;
    while let Some(token) = tokens.get(*i) {
        match token {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1)
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => return,
            _ => {}
        }
        *i += 1;
    }
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut i);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            panic!(
                "serde_derive: expected variant name, got {:?}",
                tokens.get(i)
            );
        };
        let name = name.to_string();
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                i += 1;
                VariantKind::Struct(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                i += 1;
                VariantKind::Tuple(arity)
            }
            _ => VariantKind::Unit,
        };
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            panic!("serde_derive (vendored shim): explicit discriminants are not supported");
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0usize;
    for token in &tokens {
        match token {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1)
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => count += 1,
            _ => {}
        }
    }
    // A trailing comma does not add a field.
    if matches!(tokens.last(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
        count -= 1;
    }
    count
}

// ---------------------------------------------------------------------------
// Code generation (JSON-convention representation, matching real serde)
// ---------------------------------------------------------------------------

fn serialize_struct(name: &str, fields: &[String]) -> String {
    let pairs: String = fields
        .iter()
        .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})),"))
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Object(vec![{pairs}])\n\
             }}\n\
         }}"
    )
}

fn deserialize_struct(name: &str, fields: &[String]) -> String {
    let field_inits: String = fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::from_value(value.get(\"{f}\").ok_or_else(|| \
                 ::serde::Error::custom(\"missing field `{f}` in {name}\"))?)?,"
            )
        })
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 if value.as_object().is_none() {{\n\
                     return Err(::serde::Error::custom(\"expected object for {name}\"));\n\
                 }}\n\
                 Ok({name} {{ {field_inits} }})\n\
             }}\n\
         }}"
    )
}

fn serialize_enum(name: &str, variants: &[Variant]) -> String {
    let arms: String = variants
        .iter()
        .map(|v| {
            let vname = &v.name;
            match &v.kind {
                VariantKind::Unit => format!(
                    "{name}::{vname} => ::serde::Value::Str(\"{vname}\".to_string()),"
                ),
                VariantKind::Tuple(1) => format!(
                    "{name}::{vname}(f0) => ::serde::Value::Object(vec![(\"{vname}\".to_string(), \
                     ::serde::Serialize::to_value(f0))]),"
                ),
                VariantKind::Tuple(arity) => {
                    let binders: Vec<String> = (0..*arity).map(|k| format!("f{k}")).collect();
                    let items: String = binders
                        .iter()
                        .map(|b| format!("::serde::Serialize::to_value({b}),"))
                        .collect();
                    format!(
                        "{name}::{vname}({}) => ::serde::Value::Object(vec![(\"{vname}\".to_string(), \
                         ::serde::Value::Array(vec![{items}]))]),",
                        binders.join(", ")
                    )
                }
                VariantKind::Struct(fields) => {
                    let binders = fields.join(", ");
                    let pairs: String = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "(\"{f}\".to_string(), ::serde::Serialize::to_value({f})),"
                            )
                        })
                        .collect();
                    format!(
                        "{name}::{vname} {{ {binders} }} => ::serde::Value::Object(vec![(\"{vname}\".to_string(), \
                         ::serde::Value::Object(vec![{pairs}]))]),"
                    )
                }
            }
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{ {arms} }}\n\
             }}\n\
         }}"
    )
}

fn deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let unit_arms: String = variants
        .iter()
        .filter(|v| matches!(v.kind, VariantKind::Unit))
        .map(|v| format!("\"{vn}\" => Ok({name}::{vn}),", vn = v.name))
        .collect();
    let tagged_arms: String = variants
        .iter()
        .filter_map(|v| {
            let vname = &v.name;
            match &v.kind {
                VariantKind::Unit => None,
                VariantKind::Tuple(1) => Some(format!(
                    "\"{vname}\" => Ok({name}::{vname}(::serde::Deserialize::from_value(inner)?)),"
                )),
                VariantKind::Tuple(arity) => {
                    let items: String = (0..*arity)
                        .map(|k| {
                            format!("::serde::Deserialize::from_value(&items[{k}])?,")
                        })
                        .collect();
                    Some(format!(
                        "\"{vname}\" => {{\n\
                             let items = inner.as_array().ok_or_else(|| \
                                 ::serde::Error::custom(\"expected array for {name}::{vname}\"))?;\n\
                             if items.len() != {arity} {{\n\
                                 return Err(::serde::Error::custom(\"wrong arity for {name}::{vname}\"));\n\
                             }}\n\
                             Ok({name}::{vname}({items}))\n\
                         }}"
                    ))
                }
                VariantKind::Struct(fields) => {
                    let field_inits: String = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::from_value(inner.get(\"{f}\").ok_or_else(|| \
                                 ::serde::Error::custom(\"missing field `{f}` in {name}::{vname}\"))?)?,"
                            )
                        })
                        .collect();
                    Some(format!(
                        "\"{vname}\" => Ok({name}::{vname} {{ {field_inits} }}),"
                    ))
                }
            }
        })
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 match value {{\n\
                     ::serde::Value::Str(tag) => match tag.as_str() {{\n\
                         {unit_arms}\n\
                         other => Err(::serde::Error::custom(format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                     }},\n\
                     ::serde::Value::Object(entries) if entries.len() == 1 => {{\n\
                         let (tag, inner) = &entries[0];\n\
                         match tag.as_str() {{\n\
                             {tagged_arms}\n\
                             other => Err(::serde::Error::custom(format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                         }}\n\
                     }}\n\
                     other => Err(::serde::Error::custom(format!(\"expected variant of {name}, got {{other:?}}\"))),\n\
                 }}\n\
             }}\n\
         }}"
    )
}
