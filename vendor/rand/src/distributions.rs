//! The `Distribution` trait, mirroring `rand::distributions`.

use crate::Rng;

/// Types that can sample values of `T` from a generator.
pub trait Distribution<T> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// Uniform-in-[0,1) marker distribution, mirroring `rand::distributions::Standard`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl<T: crate::StandardSample> Distribution<T> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
        T::sample_standard(rng)
    }
}
