//! Offline stand-in for the subset of the `rand 0.8` API this workspace uses.
//!
//! The build container has no registry access, so instead of the real crate
//! this vendored shim provides deterministic, seedable pseudo-random numbers
//! with the same call surface: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! the [`Rng`] extension methods (`gen`, `gen_range`, `gen_bool`) and the
//! [`distributions::Distribution`] trait.
//!
//! The generator is xoshiro256** seeded via SplitMix64 — not the real
//! `StdRng` (ChaCha12), so streams differ from upstream `rand`, but every
//! consumer in this workspace only relies on determinism per seed, which this
//! shim guarantees.

#![forbid(unsafe_code)]

pub mod distributions;
pub mod rngs;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be drawn uniformly from an `RngCore` (the shim's analogue
/// of sampling from rand's `Standard` distribution).
pub trait StandardSample: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide);
                let offset = rng.next_u64() as $wide % span;
                (self.start as $wide).wrapping_add(offset) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every value is admissible.
                    return rng.next_u64() as $t;
                }
                let offset = rng.next_u64() as $wide % span;
                (lo as $wide).wrapping_add(offset) as $t
            }
        }
    )*};
}

int_sample_range! {
    usize => u64,
    u64 => u64,
    u32 => u64,
    i64 => u64,
    i32 => u64,
    isize => u64,
}

macro_rules! float_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as StandardSample>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = <$t as StandardSample>::sample_standard(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

// Only f64: an f32 impl would make bare float-literal ranges like
// `gen_range(0.5..1.5)` ambiguous during inference.
float_sample_range!(f64);

/// User-facing extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_are_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..256 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
