//! Concrete generators. `StdRng` is xoshiro256** seeded via SplitMix64 —
//! deterministic per seed, statistically solid for simulation workloads.

use crate::{RngCore, SeedableRng};

/// Drop-in for `rand::rngs::StdRng` (different stream than upstream).
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut state = seed;
        let s = [
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
        ];
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Alias so code written against `SmallRng` also compiles.
pub type SmallRng = StdRng;
