//! Offline stand-in for the subset of `serde` this workspace uses.
//!
//! The container has no registry access, so this vendored shim replaces the
//! real serde with a much smaller design: serialization goes through an
//! in-memory [`Value`] tree (the shim's single "data format"), and
//! `#[derive(Serialize, Deserialize)]` is provided by the sibling
//! `serde_derive` stub.  `serde_json` (also vendored) renders a [`Value`] to
//! JSON text and parses it back, following the same representation
//! conventions as real serde JSON:
//!
//! * structs -> objects keyed by field name;
//! * unit enum variants -> the variant name as a string;
//! * newtype/struct enum variants -> externally tagged single-key objects;
//! * tuples -> arrays.
//!
//! Only the API surface the workspace touches is implemented; the trait
//! signatures are intentionally simpler than real serde's.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// In-memory serialization tree (the shim's universal data format).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Array(Vec<Value>),
    /// Insertion-ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up a field of an object value by name.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
    }

    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::I64(v) => Some(v as f64),
            Value::U64(v) => Some(v as f64),
            Value::F64(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(v) => Some(v),
            Value::I64(v) if v >= 0 => Some(v as u64),
            Value::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => Some(v as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(v) => Some(v),
            Value::U64(v) if v <= i64::MAX as u64 => Some(v as i64),
            Value::F64(v) if v.fract() == 0.0 && v.abs() <= i64::MAX as f64 => Some(v as i64),
            _ => None,
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    message: String,
}

impl Error {
    pub fn custom(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde error: {}", self.message)
    }
}

impl std::error::Error for Error {}

/// Conversion into the shim's [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Conversion out of the shim's [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(value: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = value
                    .as_u64()
                    .ok_or_else(|| Error::custom(format!(
                        "expected unsigned integer, got {value:?}"
                    )))?;
                <$t>::try_from(raw).map_err(|_| Error::custom(format!(
                    "integer {raw} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = value
                    .as_i64()
                    .ok_or_else(|| Error::custom(format!(
                        "expected signed integer, got {value:?}"
                    )))?;
                <$t>::try_from(raw).map_err(|_| Error::custom(format!(
                    "integer {raw} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .ok_or_else(|| Error::custom(format!("expected number, got {value:?}")))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|v| v as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::custom(format!("expected array, got {value:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let items = value
                    .as_array()
                    .ok_or_else(|| Error::custom(format!("expected array, got {value:?}")))?;
                let expected = 0usize $(+ { let _ = $idx; 1 })+;
                if items.len() != expected {
                    return Err(Error::custom(format!(
                        "expected {expected}-tuple, got array of {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}
