//! Collection strategies (`prop::collection::vec`).

use rand::rngs::StdRng;
use rand::Rng;

use crate::Strategy;

/// Inclusive bounds on a generated collection's length.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Inclusive.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            min: exact,
            max: exact,
        }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(range: core::ops::Range<usize>) -> Self {
        assert!(range.start < range.end, "empty proptest size range");
        SizeRange {
            min: range.start,
            max: range.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(range: core::ops::RangeInclusive<usize>) -> Self {
        assert!(range.start() <= range.end(), "empty proptest size range");
        SizeRange {
            min: *range.start(),
            max: *range.end(),
        }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from a [`SizeRange`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let len = rng.gen_range(self.size.min..=self.size.max);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
