//! Offline stand-in for the subset of `proptest` this workspace's tests use.
//!
//! The container has no registry access, so this shim keeps proptest's call
//! surface — the [`proptest!`] macro, [`Strategy`] with `prop_map`,
//! `prop::collection::vec`, range strategies, tuple strategies,
//! [`ProptestConfig`] and the `prop_assert*` macros — but replaces the
//! engine with plain seeded random generation: each `#[test]` body runs for
//! `config.cases` deterministic random inputs.  There is **no shrinking**; a
//! failing case panics with the normal assertion message.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod collection;
pub mod option;

/// Run-time configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Lower than real proptest's 256: the tier-1 suite must stay fast.
        ProptestConfig { cases: 32 }
    }
}

/// A generator of random values, mirroring `proptest::strategy::Strategy`.
///
/// Unlike real proptest there is no value tree or shrinking; a strategy just
/// draws a value from the test's RNG.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map {
            strategy: self,
            map,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    strategy: S,
    map: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.map)(self.strategy.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

// Only f64 among floats: an f32 impl would make bare float-literal ranges
// ambiguous during inference.
impl_range_strategy!(usize, u32, u64, i32, i64, f64);

/// A strategy producing one constant value, mirroring `proptest::strategy::Just`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

/// Namespace module so `prop::collection::vec(...)` works after
/// `use proptest::prelude::*`.
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::{any, Arbitrary};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy};
}

/// The canonical strategy for a type, mirroring `proptest::arbitrary` far
/// enough that `any::<bool>()` and friends work.
pub trait Arbitrary: Sized {
    fn generate_arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_uniform {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn generate_arbitrary(rng: &mut StdRng) -> $t {
                rng.gen()
            }
        }
    )*};
}

// Limited to what the vendored `rand`'s `StandardSample` covers.
impl_arbitrary_uniform!(bool, u32, u64, usize, f32, f64);

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: core::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::generate_arbitrary(rng)
    }
}

/// `any::<T>()`: the full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: core::marker::PhantomData,
    }
}

/// Creates the deterministic RNG behind one property test.  Used by the
/// [`proptest!`] expansion; seeded per test so failures reproduce exactly.
pub fn new_test_rng(test_name: &str) -> StdRng {
    // FNV-1a over the test name gives each test its own stream.
    let mut hash = 0xcbf29ce484222325u64;
    for byte in test_name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    StdRng::seed_from_u64(hash)
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@internal ($config) $($rest)*);
    };
    (@internal ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $test_name:ident($($param:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $test_name() {
                let config: $crate::ProptestConfig = $config;
                let mut proptest_rng = $crate::new_test_rng(stringify!($test_name));
                for proptest_case in 0..config.cases {
                    // Names the failing case if the body panics before `disarm`.
                    let guard = $crate::CaseGuard::new(stringify!($test_name), proptest_case);
                    $(let $param = $crate::Strategy::generate(&($strategy), &mut proptest_rng);)+
                    $body
                    guard.disarm();
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@internal ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Prints which case failed when a property body panics (no shrinking).
pub struct CaseGuard {
    test_name: &'static str,
    case: u32,
    armed: bool,
}

impl CaseGuard {
    pub fn new(test_name: &'static str, case: u32) -> Self {
        CaseGuard {
            test_name,
            case,
            armed: true,
        }
    }

    pub fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if self.armed {
            eprintln!(
                "proptest (vendored shim): `{}` failed on case {} (deterministic seed; no shrinking)",
                self.test_name, self.case
            );
        }
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_ne!($left, $right, $($fmt)*)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategies_are_deterministic_per_seed() {
        let strategy = prop::collection::vec((0usize..10, 0.0f64..1.0), 1..5);
        let mut a = new_test_rng("x");
        let mut b = new_test_rng("x");
        for _ in 0..50 {
            assert_eq!(strategy.generate(&mut a), strategy.generate(&mut b));
        }
    }

    #[test]
    fn vec_strategy_respects_size_bounds() {
        let strategy = prop::collection::vec(0usize..100, 2..7);
        let mut rng = new_test_rng("bounds");
        for _ in 0..200 {
            let v = strategy.generate(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 100));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_round_trips(x in 0usize..50, y in 0.0f64..1.0) {
            prop_assert!(x < 50);
            prop_assert!((0.0..1.0).contains(&y));
        }
    }
}
