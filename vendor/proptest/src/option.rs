//! Option strategies (`prop::option::of` / `prop::option::weighted`),
//! mirroring `proptest::option`.

use rand::rngs::StdRng;
use rand::Rng;

use crate::Strategy;

/// Strategy for `Option<S::Value>` that is `Some` with probability `prob`.
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
    prob: f64,
}

/// `Some(inner)` with probability 0.5, `None` otherwise.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    weighted(0.5, inner)
}

/// `Some(inner)` with probability `prob`, `None` otherwise.
pub fn weighted<S: Strategy>(prob: f64, inner: S) -> OptionStrategy<S> {
    assert!(
        (0.0..=1.0).contains(&prob),
        "probability {prob} outside [0, 1]"
    );
    OptionStrategy { inner, prob }
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        if rng.gen_bool(self.prob) {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}
