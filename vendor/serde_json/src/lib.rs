//! Offline stand-in for the subset of `serde_json` this workspace uses:
//! [`to_string`] and [`from_str`] over the vendored serde shim's `Value`
//! tree.  The text format is standard JSON; floats are printed with Rust's
//! shortest round-trip formatting, so `to_string` -> `from_str` round-trips
//! exactly.

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize, Value};

pub use serde::Error;

pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out)?;
    Ok(out)
}

/// Deserializes a value from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    T::from_value(&value)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(value: &Value, out: &mut String) -> Result<()> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(v) => out.push_str(&v.to_string()),
        Value::U64(v) => out.push_str(&v.to_string()),
        Value::F64(v) => {
            if !v.is_finite() {
                return Err(Error::custom("cannot serialize non-finite float as JSON"));
            }
            // `{:?}` is Rust's shortest round-trip float formatting and always
            // contains a `.` or exponent, so the value re-parses as F64.
            out.push_str(&format!("{v:?}"));
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out)?;
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (key, field)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(key, out);
                out.push(':');
                write_value(field, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected input {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, keyword: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            Ok(value)
        } else {
            Err(Error::custom(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let start = self.pos + 1;
                            let hex = self
                                .bytes
                                .get(start..start + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| Error::custom("invalid \\u escape"))?;
                            // Surrogate pairs are not needed by this workspace.
                            out.push(
                                char::from_u32(hex)
                                    .ok_or_else(|| Error::custom("invalid \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        other => return Err(Error::custom(format!("invalid escape {other:?}"))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !is_float {
            if text.starts_with('-') {
                if let Ok(v) = text.parse::<i64>() {
                    return Ok(Value::I64(v));
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => return Err(Error::custom(format!("expected `,` or `]`, got {other:?}"))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}`, got {other:?}"
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_containers() {
        let v = vec![(1usize, 0.25f64), (2, 0.5)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1,0.25],[2,0.5]]");
        let back: Vec<(usize, f64)> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn round_trips_strings_with_escapes() {
        let s = "a\"b\\c\nd\te\u{1F600}".to_string();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn round_trips_tricky_floats() {
        for x in [0.1f64, 1.0, -2.5e-10, 1e300, f64::MIN_POSITIVE] {
            let json = to_string(&x).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back, x);
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<f64>("nope").is_err());
        assert!(from_str::<f64>("1.0 x").is_err());
        assert!(from_str::<Vec<f64>>("[1,").is_err());
    }

    #[test]
    fn negative_integers_parse_signed() {
        let back: i64 = from_str("-42").unwrap();
        assert_eq!(back, -42);
    }
}
