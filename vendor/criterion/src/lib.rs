//! Offline stand-in for the subset of `criterion` this workspace's benches
//! use.  It keeps the same call surface (`criterion_group!`,
//! `criterion_main!`, `Criterion::benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`) but replaces the statistical machinery
//! with a simple timed loop: each benchmark is warmed up once and then timed
//! over `sample_size` iterations, reporting the mean per-iteration time.
//!
//! Numbers from this harness are indicative, not rigorous — good enough to
//! compare algorithmic variants in this repo until the real criterion can be
//! pulled from a registry.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for a parameterised benchmark, mirroring `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Per-iteration timing loop handed to benchmark closures.
pub struct Bencher {
    samples: u64,
    mean: Option<Duration>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One warm-up pass, then the timed samples.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.mean = Some(start.elapsed() / self.samples.max(1) as u32);
    }
}

/// Group of related benchmarks, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: u64,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, |bencher| routine(bencher));
        self.criterion.completed += 1;
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, |bencher| routine(bencher, input));
        self.criterion.completed += 1;
        self
    }

    pub fn finish(self) {}
}

/// The benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: u64,
    completed: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            completed: 0,
        }
    }
}

impl Criterion {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.to_string();
        let samples = self.sample_size;
        run_one(&label, samples, |bencher| routine(bencher));
        self.completed += 1;
        self
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: u64, mut routine: F) {
    let mut bencher = Bencher {
        samples,
        mean: None,
    };
    routine(&mut bencher);
    match bencher.mean {
        Some(mean) => println!("bench {label:<50} {mean:>12.2?}/iter ({samples} samples)"),
        None => println!("bench {label:<50} (no measurement: Bencher::iter never called)"),
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($function:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($function(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
