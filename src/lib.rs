//! # probsyn — histogram and wavelet synopses on probabilistic data
//!
//! Umbrella crate re-exporting the whole workspace, which reproduces
//! *Cormode & Garofalakis, "Histograms and Wavelets on Probabilistic Data",
//! ICDE 2009*:
//!
//! * [`core`](pds_core) — uncertainty models (basic, tuple pdf, value pdf),
//!   possible-worlds semantics, moments, error metrics and workload
//!   generators;
//! * [`histogram`](pds_histogram) — optimal and `(1+ε)`-approximate
//!   probabilistic histograms under SSE, SSRE, SAE, SARE, MAE and MARE, plus
//!   the deterministic baselines used in the paper's experiments;
//! * [`wavelet`](pds_wavelet) — Haar wavelet synopses: the SSE-optimal
//!   expected-coefficient thresholding and the restricted dynamic program for
//!   non-SSE error metrics.
//!
//! ## Quickstart
//!
//! ```
//! use probsyn::prelude::*;
//!
//! // A small uncertain relation in the basic model.
//! let relation: ProbabilisticRelation =
//!     BasicModel::from_pairs(8, [(0, 0.9), (1, 0.4), (1, 0.7), (4, 0.2), (6, 0.95)])
//!         .unwrap()
//!         .into();
//!
//! // Optimal 3-bucket histogram under sum-squared-relative-error.
//! let metric = ErrorMetric::Ssre { c: 1.0 };
//! let histogram = build_histogram(&relation, metric, 3).unwrap();
//! assert_eq!(histogram.num_buckets(), 3);
//!
//! // Optimal 4-term wavelet synopsis under expected SSE.
//! let wavelet = build_sse_wavelet(&relation, 4).unwrap();
//! assert!(wavelet.retained().len() <= 4);
//! ```

pub use pds_core as core;
pub use pds_histogram as histogram;
pub use pds_wavelet as wavelet;

pub mod aqp;

/// Convenient re-exports of the most commonly used items.
pub mod prelude {
    pub use pds_core::generator::{
        mystiq_like, tpch_like, zipf_value_pdf, MystiqLikeConfig, TpchLikeConfig, ValuePdfConfig,
    };
    pub use pds_core::metrics::ErrorMetric;
    pub use pds_core::model::{
        BasicModel, ProbabilisticRelation, TupleAlternatives, TuplePdfModel, ValuePdf,
        ValuePdfModel,
    };
    pub use pds_core::moments::{item_moments, ItemMoments};
    pub use pds_core::values::ValueDomain;
    pub use pds_core::worlds::{sample_world, PossibleWorlds};
    pub use pds_core::{PdsError, Result};
    pub use pds_histogram::{
        approx_histogram, build_histogram, expectation_histogram, optimal_histogram,
        sampled_world_histogram, Bucket, Histogram,
    };
    pub use pds_histogram::evaluate::{error_percentage, expected_cost};
    pub use pds_wavelet::{build_sse_wavelet, HaarTransform, WaveletSynopsis};
}
