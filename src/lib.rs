//! # probsyn — histogram and wavelet synopses on probabilistic data
//!
//! Umbrella crate re-exporting the whole workspace, which reproduces
//! *Cormode & Garofalakis, "Histograms and Wavelets on Probabilistic Data",
//! ICDE 2009*:
//!
//! * [`core`](pds_core) — uncertainty models (basic, tuple pdf, value pdf),
//!   possible-worlds semantics, moments, error metrics and workload
//!   generators;
//! * [`histogram`](pds_histogram) — optimal and `(1+ε)`-approximate
//!   probabilistic histograms under SSE, SSRE, SAE, SARE, MAE and MARE, plus
//!   the deterministic baselines used in the paper's experiments;
//! * [`wavelet`](pds_wavelet) — Haar wavelet synopses: the SSE-optimal
//!   expected-coefficient thresholding and the restricted dynamic program for
//!   non-SSE error metrics;
//! * [`store`](pds_store) — the partitioned streaming-ingest and persistent
//!   synopsis store: per-item-range memtables, sealed segments with their own
//!   synopses, LSM-style compaction, a partition-merge DP producing global
//!   histograms, and the versioned compact binary format;
//! * [`server`](pds_server) — a concurrent TCP front-end serving the store's
//!   panic-free query path over a line-oriented text protocol, with reads
//!   executing against immutable snapshot views and a `METRICS` verb
//!   exposing both layers' telemetry as a Prometheus-style scrape.
//!
//! ## Quickstart
//!
//! ```
//! use probsyn::prelude::*;
//!
//! // A small uncertain relation in the basic model.
//! let relation: ProbabilisticRelation =
//!     BasicModel::from_pairs(8, [(0, 0.9), (1, 0.4), (1, 0.7), (4, 0.2), (6, 0.95)])
//!         .unwrap()
//!         .into();
//!
//! // Optimal 3-bucket histogram under sum-squared-relative-error.
//! let metric = ErrorMetric::Ssre { c: 1.0 };
//! let histogram = build_histogram(&relation, metric, 3).unwrap();
//! assert_eq!(histogram.num_buckets(), 3);
//!
//! // Optimal 4-term wavelet synopsis under expected SSE.
//! let wavelet = build_sse_wavelet(&relation, 4).unwrap();
//! assert!(wavelet.retained().len() <= 4);
//! ```
//!
//! ## Workspace layout
//!
//! The repository is a seven-package Cargo workspace rooted at this crate:
//!
//! | Path              | Package         | Contents                                   |
//! |-------------------|-----------------|--------------------------------------------|
//! | `.`               | `probsyn`       | umbrella re-exports, [`prelude`], [`aqp`]  |
//! | `crates/core`     | `pds-core`      | uncertainty models, worlds, moments, generators, stream records, binary-envelope primitives, scoped thread pool (`pds_core::pool`), lock-free telemetry primitives (`pds_core::telemetry`) |
//! | `crates/histogram`| `pds-histogram` | bucket-cost oracles, DP (serial + level-parallel), `(1+ε)` approximation, partition-merge DP |
//! | `crates/wavelet`  | `pds-wavelet`   | Haar transform, SSE and non-SSE thresholding |
//! | `crates/store`    | `pds-store`     | concurrent sharded ingest memtables, background sealing, per-partition WALs, compaction, store persistence, pipeline telemetry (counters/histograms/events behind `StoreConfig::telemetry`) |
//! | `crates/server`   | `pds-server`    | snapshot-isolated TCP query/ingest front-end (`EST`/`RANGE`/`STATS [JSON]`/`MERGE`/`INGEST`/`METRICS`/admin verbs), worker pool over `pds_core::pool`, per-verb request telemetry |
//! | `crates/bench`    | `pds-bench`     | workloads, report tables, figure binaries  |
//! | `crates/analyze`  | `pds-analyze`   | workspace invariant checker (lock discipline, panic-freedom, binio framing, crash-point coverage, telemetry start/observe pairing) + deterministic decoder/recovery fuzzer |
//!
//! ### Multi-core execution
//!
//! Every parallel path resolves its worker count through `pds_core::pool`
//! (the `PDS_THREADS` environment variable, `pool::set_num_threads`, or the
//! hardware default): the exact DP's level-parallel build, the store's
//! batch ingest and `seal_all`/`compact_all`/`merge_global`, and the
//! optional background seal workers
//! (`SynopsisStore::with_background_sealing`).  All of them are
//! **deterministic** — identical outputs (bit-for-bit) at every thread
//! count — so parallelism is a pure throughput knob, pinned by the
//! serial-vs-concurrent equivalence suites.
//!
//! ### Observability
//!
//! The store and server are instrumented with lock-free, allocation-free
//! telemetry (`pds_core::telemetry`: atomic counters and gauges, log₂-bucket
//! latency histograms, a bounded event ring).  `SynopsisStore::render_metrics`
//! and the server's `METRICS` verb expose everything as a Prometheus-style
//! text scrape; `STATS JSON` returns the machine-readable store counters and
//! `METRICS EVENTS` dumps the recent structured event trace.  The store-side
//! knob is `StoreConfig::telemetry` (default on); turning it off is
//! **bit-invisible** — estimates, snapshots and segment bytes are identical
//! either way, pinned by a deterministic test — and the instrumented ingest
//! path stays within 5% of the uninstrumented one, gated in CI
//! (`pds_store_pipeline --telemetry-gate`).
//!
//! ### Persistent formats
//!
//! Synopses and segments persist in a **versioned compact binary format**
//! (magic + `u16` version + varint/IEEE-754 payload; see `pds_core::binio`):
//! `Histogram::to_binary` (`PDSH` v1), `WaveletSynopsis::to_binary` (`PDSW`
//! v1), `Segment::to_binary` (`PDSG` v1) and `SynopsisStore::to_binary`
//! (`PDST` v1).  Truncation, corruption and version skew decode to
//! `PdsError`s, never panics; the versioned JSON envelopes
//! (`Histogram::to_json`, `WaveletSynopsis::to_json`, `Segment::to_json`)
//! stay as the human-readable debug encoding.
//!
//! ### Partition-merge cost contract
//!
//! `SynopsisStore::merge_global` and `pds_histogram::merge` re-bucket the
//! concatenated per-partition synopses; the costs recorded on the merged
//! buckets measure the **merge-stage** SSE against that piecewise-constant
//! summary, not the end-to-end error against the raw probabilistic data
//! (which is bounded by per-segment synopsis error plus merge-stage error).
//!
//! `vendor/` additionally carries minimal offline stand-ins for `rand`,
//! `serde`, `serde_json`, `criterion` and `proptest` (the build environment
//! has no crates.io access); they are wired in via path dependencies and keep
//! the upstream call surfaces, so swapping back to the real crates is a
//! `Cargo.toml`-only change.
//!
//! ## Building, testing, benchmarks
//!
//! ```text
//! cargo build --release          # builds the whole workspace
//! cargo test -q                  # unit + integration + doc tests
//! cargo bench -p pds-bench       # criterion micro-benchmarks (4 suites)
//! cargo run --release -p pds-bench --bin example1    # paper Example 1
//! cargo run --release -p pds-bench --bin figure2     # paper Figure 2 tables
//! cargo run --release --example quickstart           # guided tour
//! cargo run --release --example pds_server_demo      # TCP front-end under concurrent load
//! cargo run --release --example pds_store_pipeline -- --telemetry-gate   # 5% overhead gate
//! cargo run -p pds-analyze -- check                  # static invariant lints
//! cargo run --release -p pds-analyze -- fuzz         # 50k-mutation decoder fuzz
//! ```
//!
//! The figure binaries (`example1`, `figure2`, `figure3`, `figure4`,
//! `ablation_approx`, `ablation_sse_objective`, `wavelet_nonsse`) print the
//! tables behind the paper's plots; the `examples/` directory holds scenario
//! walkthroughs (record linkage, sensor readings, ingest-and-query, ...).

pub use pds_core as core;
pub use pds_histogram as histogram;
pub use pds_server as server;
pub use pds_store as store;
pub use pds_wavelet as wavelet;

pub mod aqp;

/// Convenient re-exports of the most commonly used items.
pub mod prelude {
    pub use pds_core::generator::{
        mystiq_like, tpch_like, zipf_value_pdf, MystiqLikeConfig, TpchLikeConfig, ValuePdfConfig,
    };
    pub use pds_core::metrics::ErrorMetric;
    pub use pds_core::model::{
        BasicModel, ProbabilisticRelation, TupleAlternatives, TuplePdfModel, ValuePdf,
        ValuePdfModel,
    };
    pub use pds_core::moments::{item_moments, ItemMoments};
    pub use pds_core::stream::{basic_stream, records_of, BasicStreamConfig, StreamRecord};
    pub use pds_core::values::ValueDomain;
    pub use pds_core::worlds::{sample_world, PossibleWorlds};
    pub use pds_core::{PdsError, Result};
    pub use pds_histogram::evaluate::{error_percentage, expected_cost};
    pub use pds_histogram::{
        approx_histogram, build_histogram, expectation_histogram, merge_histograms,
        optimal_histogram, sampled_world_histogram, Bucket, Histogram,
    };
    pub use pds_store::{PartitionSpec, Segment, StoreConfig, SynopsisKind, SynopsisStore};
    pub use pds_wavelet::{build_sse_wavelet, HaarTransform, WaveletSynopsis};
}
