//! Approximate query processing (AQP) on top of the synopses.
//!
//! The paper motivates probabilistic-data synopses precisely because exact
//! query evaluation over a probabilistic database is `#P`-hard: "it is then
//! feasible to run more expensive algorithms over the much compressed
//! representation, and still obtain a fast and accurate answer".  This module
//! provides that last step for the two workhorse query shapes over a
//! frequency distribution — point lookups and range aggregates — answering
//! them from a histogram or wavelet synopsis and, for validation, from the
//! exact per-item expectations.

use pds_core::model::ProbabilisticRelation;
use pds_core::moments::item_moments;
use pds_histogram::Histogram;
use pds_store::SynopsisStore;
use pds_wavelet::WaveletSynopsis;

/// A query over the (random) frequency vector `g`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrequencyQuery {
    /// The frequency of a single item, `g_i`.
    Point {
        /// The item queried.
        item: usize,
    },
    /// The total frequency over an inclusive item range, `Σ_{a ≤ i ≤ b} g_i`.
    RangeSum {
        /// First item of the range (inclusive).
        start: usize,
        /// Last item of the range (inclusive).
        end: usize,
    },
}

impl FrequencyQuery {
    /// The inclusive item range touched by the query.
    pub fn range(&self) -> (usize, usize) {
        match *self {
            FrequencyQuery::Point { item } => (item, item),
            FrequencyQuery::RangeSum { start, end } => (start, end),
        }
    }

    /// Evaluates the query on a concrete frequency vector.
    pub fn evaluate(&self, frequencies: &[f64]) -> f64 {
        let (s, e) = self.range();
        frequencies[s..=e.min(frequencies.len() - 1)].iter().sum()
    }
}

/// A query answer together with the synopsis it came from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryAnswer {
    /// The estimated expected value of the query.
    pub estimate: f64,
}

/// The exact expected answer `E_W[q(g)]`, computable in closed form because
/// expectation is linear: it only needs the per-item expected frequencies.
pub fn exact_expected_answer(relation: &ProbabilisticRelation, query: FrequencyQuery) -> f64 {
    let moments = item_moments(relation);
    let (s, e) = query.range();
    moments[s..=e.min(moments.len() - 1)]
        .iter()
        .map(|m| m.mean)
        .sum()
}

/// Answers the query from a histogram synopsis: every item in the range is
/// estimated by its bucket representative.
pub fn answer_with_histogram(histogram: &Histogram, query: FrequencyQuery) -> QueryAnswer {
    let (s, e) = query.range();
    let e = e.min(histogram.n() - 1);
    // Walk the buckets overlapping the range instead of iterating items, so a
    // wide range over a narrow synopsis costs O(#buckets).
    let mut estimate = 0.0;
    for bucket in histogram.buckets() {
        if bucket.end < s || bucket.start > e {
            continue;
        }
        let overlap = bucket.end.min(e) - bucket.start.max(s) + 1;
        estimate += overlap as f64 * bucket.representative;
    }
    QueryAnswer { estimate }
}

/// Answers the query from a wavelet synopsis by reconstructing the retained
/// coefficients over the queried range.
pub fn answer_with_wavelet(synopsis: &WaveletSynopsis, query: FrequencyQuery) -> QueryAnswer {
    let reconstruction = synopsis.reconstruct();
    QueryAnswer {
        estimate: query.evaluate(&reconstruction),
    }
}

/// Answers the query from a partitioned synopsis store, routing it across
/// every live memtable (exact running expectations) and sealed segment
/// (histogram bucket walks or wavelet reconstructions) overlapping the
/// queried range.
///
/// The store may be serving mid-lifecycle — seals and compactions in
/// flight, or freshly reopened after a crash.  A crash-durable store
/// (`SynopsisStore::open_with_wal`) reopened from its manifest, segment
/// blobs and WAL tail answers **bit-identically** to the uninterrupted
/// run (pinned by `tests/store_end_to_end.rs` and the crash-injection
/// matrix in `crates/store/tests/store_crash_matrix.rs`), so AQP callers
/// need no special restart handling.
pub fn answer_with_store(store: &SynopsisStore, query: FrequencyQuery) -> QueryAnswer {
    let (s, e) = query.range();
    QueryAnswer {
        estimate: store.range_estimate(s, e),
    }
}

/// Relative deviation of an estimate from a reference value, with a sanity
/// bound on the denominator (same convention as the paper's relative error
/// metrics).
pub fn relative_deviation(estimate: f64, reference: f64, sanity: f64) -> f64 {
    (estimate - reference).abs() / sanity.max(reference.abs())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    fn workload() -> ProbabilisticRelation {
        mystiq_like(MystiqLikeConfig {
            n: 64,
            avg_tuples_per_item: 3.0,
            skew: 0.8,
            seed: 77,
        })
        .into()
    }

    #[test]
    fn exact_answers_match_possible_world_expectations() {
        let rel: ProbabilisticRelation =
            BasicModel::from_pairs(6, [(0, 0.5), (1, 0.25), (1, 0.5), (3, 0.9), (5, 0.4)])
                .unwrap()
                .into();
        let worlds = PossibleWorlds::enumerate(&rel).unwrap();
        for query in [
            FrequencyQuery::Point { item: 1 },
            FrequencyQuery::RangeSum { start: 0, end: 3 },
            FrequencyQuery::RangeSum { start: 2, end: 5 },
        ] {
            let exact = exact_expected_answer(&rel, query);
            let brute = worlds.expectation(|w| query.evaluate(w));
            assert!((exact - brute).abs() < 1e-12);
        }
    }

    #[test]
    fn full_resolution_synopses_answer_exactly() {
        let rel = workload();
        let metric = ErrorMetric::Sse;
        let histogram = build_histogram(&rel, metric, rel.n()).unwrap();
        let wavelet = build_sse_wavelet(&rel, rel.n()).unwrap();
        for query in [
            FrequencyQuery::Point { item: 17 },
            FrequencyQuery::RangeSum { start: 0, end: 63 },
            FrequencyQuery::RangeSum { start: 8, end: 40 },
        ] {
            let exact = exact_expected_answer(&rel, query);
            assert!((answer_with_histogram(&histogram, query).estimate - exact).abs() < 1e-9);
            assert!((answer_with_wavelet(&wavelet, query).estimate - exact).abs() < 1e-9);
        }
    }

    #[test]
    fn compressed_synopses_stay_close_on_wide_ranges() {
        // Wide range sums average out per-item errors, so even a strongly
        // compressed synopsis should land within a few percent.
        let rel = workload();
        let histogram = build_histogram(&rel, ErrorMetric::Sse, 8).unwrap();
        let wavelet = build_sse_wavelet(&rel, 8).unwrap();
        let query = FrequencyQuery::RangeSum { start: 0, end: 63 };
        let exact = exact_expected_answer(&rel, query);
        let h = answer_with_histogram(&histogram, query).estimate;
        let w = answer_with_wavelet(&wavelet, query).estimate;
        assert!(
            relative_deviation(h, exact, 1.0) < 0.05,
            "histogram {h} vs {exact}"
        );
        assert!(
            relative_deviation(w, exact, 1.0) < 0.05,
            "wavelet {w} vs {exact}"
        );
    }

    #[test]
    fn histogram_range_walk_matches_item_by_item_evaluation() {
        let rel = workload();
        let histogram = build_histogram(&rel, ErrorMetric::Sae, 7).unwrap();
        for (s, e) in [(0usize, 5usize), (3, 3), (10, 45), (40, 63), (0, 63)] {
            let query = FrequencyQuery::RangeSum { start: s, end: e };
            let walked = answer_with_histogram(&histogram, query).estimate;
            let item_by_item: f64 = (s..=e).map(|i| histogram.estimate(i)).sum();
            assert!((walked - item_by_item).abs() < 1e-9);
        }
    }

    #[test]
    fn point_queries_return_bucket_representatives() {
        let rel = workload();
        let histogram = build_histogram(&rel, ErrorMetric::Sse, 5).unwrap();
        for item in [0usize, 13, 31, 63] {
            let query = FrequencyQuery::Point { item };
            assert_eq!(
                answer_with_histogram(&histogram, query).estimate,
                histogram.estimate(item)
            );
            assert_eq!(query.range(), (item, item));
        }
    }

    #[test]
    fn store_answers_combine_memtable_and_segments() {
        use pds_core::stream::records_of;

        let rel = workload();
        let store = SynopsisStore::new(StoreConfig::new(
            PartitionSpec::uniform(64, 4).unwrap(),
            1_000_000, // manual sealing
            64,        // full budget: segments are exact
            SynopsisKind::Histogram(ErrorMetric::Sse),
        ))
        .unwrap();
        store.ingest_all(records_of(&rel)).unwrap();
        // Seal half the partitions; the rest stays live in memtables.
        store.seal_partition(0).unwrap();
        store.seal_partition(2).unwrap();
        for query in [
            FrequencyQuery::Point { item: 5 },
            FrequencyQuery::RangeSum { start: 0, end: 63 },
            FrequencyQuery::RangeSum { start: 10, end: 40 },
        ] {
            let exact = exact_expected_answer(&rel, query);
            let got = answer_with_store(&store, query).estimate;
            assert!((got - exact).abs() < 1e-9, "{query:?}: {got} vs {exact}");
        }
    }

    #[test]
    fn relative_deviation_uses_the_sanity_bound() {
        assert_eq!(relative_deviation(3.0, 2.0, 1.0), 0.5);
        assert_eq!(relative_deviation(1.0, 0.0, 0.5), 2.0);
        assert_eq!(relative_deviation(5.0, 5.0, 1.0), 0.0);
    }
}
