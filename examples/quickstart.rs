//! Quickstart: build histogram and wavelet synopses over a small uncertain
//! relation and inspect them.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use probsyn::prelude::*;

fn main() -> Result<()> {
    // An uncertain relation in the basic model: each tuple is an (item,
    // probability) pair, several tuples may refer to the same item, and the
    // item's frequency is the number of its tuples that materialise.
    let relation: ProbabilisticRelation = BasicModel::from_pairs(
        16,
        [
            (0, 0.9),
            (0, 0.8),
            (1, 0.6),
            (2, 0.95),
            (2, 0.5),
            (2, 0.4),
            (5, 0.3),
            (6, 0.7),
            (7, 0.2),
            (10, 0.99),
            (10, 0.85),
            (11, 0.75),
            (12, 0.1),
            (15, 0.65),
        ],
    )?
    .into();

    println!(
        "domain size n = {}, input pairs m = {}",
        relation.n(),
        relation.m()
    );
    println!(
        "expected frequencies: {:?}\n",
        round(&relation.expected_frequencies())
    );

    // ---------------------------------------------------------------- histogram
    // Optimal 4-bucket histogram under sum-squared-relative-error (c = 1).
    let metric = ErrorMetric::Ssre { c: 1.0 };
    let histogram = build_histogram(&relation, metric, 4)?;
    println!("optimal 4-bucket {metric} histogram:");
    for bucket in histogram.buckets() {
        println!(
            "  [{:>2}, {:>2}]  representative = {:.3}  expected bucket error = {:.4}",
            bucket.start, bucket.end, bucket.representative, bucket.cost
        );
    }
    let cost = expected_cost(&relation, metric, &histogram);
    println!("expected {metric} of the synopsis: {cost:.4}");

    // Compare against the naive heuristics of the paper's experiments.
    let expectation = expectation_histogram(&relation, metric, 4)?;
    let mut rng = rand_rng();
    let sampled = sampled_world_histogram(&relation, metric, 4, &mut rng)?;
    println!(
        "heuristics: expectation = {:.4}, sampled world = {:.4}\n",
        expected_cost(&relation, metric, &expectation),
        expected_cost(&relation, metric, &sampled)
    );

    // ------------------------------------------------------------------ wavelet
    // Expected-SSE-optimal 5-term Haar wavelet synopsis.
    let wavelet = build_sse_wavelet(&relation, 5)?;
    println!("5-term SSE wavelet synopsis (expected coefficients retained):");
    for c in wavelet.retained() {
        println!("  c{:<2} = {:+.4}", c.index, c.value);
    }
    println!("reconstruction: {:?}", round(&wavelet.reconstruct()));
    println!(
        "expected SSE: {:.4}",
        probsyn::wavelet::sse::expected_sse(&relation, &wavelet)
    );
    Ok(())
}

fn round(values: &[f64]) -> Vec<f64> {
    values.iter().map(|v| (v * 100.0).round() / 100.0).collect()
}

fn rand_rng() -> impl rand::Rng {
    use rand::SeedableRng;
    rand::rngs::StdRng::seed_from_u64(7)
}
