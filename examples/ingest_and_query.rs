//! End-to-end pipeline: ingest an uncertain relation from a text dump (the
//! shape a record-linkage tool or the MystiQ project would export), inspect
//! its per-item uncertainty with tail bounds, build synopses, and answer
//! approximate queries from them.
//!
//! ```text
//! cargo run --release --example ingest_and_query
//! ```

use probsyn::aqp::{
    answer_with_histogram, answer_with_wavelet, exact_expected_answer, relative_deviation,
    FrequencyQuery,
};
use probsyn::core::bounds::{frequency_ranges, high_probability_ranges};
use probsyn::core::io::{read_basic_pairs, relation_to_string};
use probsyn::prelude::*;

/// A small uncertain match table as it might arrive from a linkage tool:
/// `item  match-probability`, one candidate match per line.
const RAW_PAIRS: &str = "\
# movie-id  match-confidence
0 0.92
0 0.35
1 0.60
2 0.98
2 0.55
2 0.20
3 0.15
4 0.80
4 0.70
4 0.40
4 0.10
6 0.95
7 0.25
7 0.30
";

fn main() -> Result<()> {
    // -------------------------------------------------------------- ingestion
    let basic = read_basic_pairs(RAW_PAIRS.as_bytes())?;
    let relation: ProbabilisticRelation = basic.into();
    println!(
        "ingested {} uncertain tuples over {} items",
        relation.m(),
        relation.n()
    );
    println!(
        "portable dump (probsyn text format):\n{}",
        relation_to_string(&relation)?
    );

    // ---------------------------------------------------- per-item uncertainty
    let worst = frequency_ranges(&relation);
    let hp = high_probability_ranges(&relation, 0.05);
    println!("per-item frequency ranges (worst case vs 95% Chernoff):");
    for i in 0..relation.n() {
        println!(
            "  item {i}: worst case [{:.0}, {:.0}], with prob ≥ 0.95 at most {:.0}",
            worst[i].min, worst[i].max, hp[i].high
        );
    }

    // ----------------------------------------------------------------- synopses
    let metric = ErrorMetric::Sae;
    let histogram = build_histogram(&relation, metric, 3)?;
    let wavelet = build_sse_wavelet(&relation, 3)?;
    println!(
        "\n3-bucket SAE histogram boundaries: {:?}",
        histogram.boundaries()
    );
    println!("3-term wavelet coefficients kept: {:?}", wavelet.indices());

    // ----------------------------------------------------------------- queries
    println!("\napproximate query answers (expected values):");
    for query in [
        FrequencyQuery::Point { item: 2 },
        FrequencyQuery::Point { item: 4 },
        FrequencyQuery::RangeSum { start: 0, end: 3 },
        FrequencyQuery::RangeSum { start: 4, end: 7 },
    ] {
        let exact = exact_expected_answer(&relation, query);
        let h = answer_with_histogram(&histogram, query).estimate;
        let w = answer_with_wavelet(&wavelet, query).estimate;
        println!(
            "  {query:?}: exact {exact:.2}, histogram {h:.2} (dev {:.0}%), wavelet {w:.2} (dev {:.0}%)",
            100.0 * relative_deviation(h, exact, 0.5),
            100.0 * relative_deviation(w, exact, 0.5),
        );
    }
    Ok(())
}
