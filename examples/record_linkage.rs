//! Record-linkage scenario (the MystiQ motivation of the paper): a linkage
//! tool matched movie records against an e-commerce inventory and attached a
//! confidence to every candidate match, so each movie has an *uncertain*
//! number of matches.  We summarise the resulting probabilistic relation with
//! a relative-error histogram, exactly the synopsis a probabilistic query
//! optimiser would keep, and show how much better the probabilistic
//! construction is than summarising a deterministic proxy.
//!
//! ```text
//! cargo run --release --example record_linkage
//! ```

use probsyn::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<()> {
    // A MystiQ-shaped workload: ~4.6 candidate matches per movie on average,
    // heavy-tailed, each with its own confidence.
    let relation: ProbabilisticRelation = mystiq_like(MystiqLikeConfig {
        n: 512,
        avg_tuples_per_item: 4.6,
        skew: 0.8,
        seed: 2024,
    })
    .into();
    println!(
        "record-linkage relation: {} movies, {} candidate matches",
        relation.n(),
        relation.m()
    );

    let metric = ErrorMetric::Ssre { c: 0.5 };
    let buckets = 32;

    // The probabilistic optimum (Section 3.2 of the paper).
    let optimal = build_histogram(&relation, metric, buckets)?;
    let optimal_cost = expected_cost(&relation, metric, &optimal);

    // The two heuristics a deterministic system would fall back to.
    let expectation = expectation_histogram(&relation, metric, buckets)?;
    let mut rng = StdRng::seed_from_u64(9);
    let sampled = sampled_world_histogram(&relation, metric, buckets, &mut rng)?;

    // Normalise to the paper's error-percentage scale.
    let best = expected_cost(
        &relation,
        metric,
        &build_histogram(&relation, metric, relation.n())?,
    );
    let worst = expected_cost(&relation, metric, &build_histogram(&relation, metric, 1)?);
    let pct = |cost: f64| error_percentage(cost, best, worst);

    println!("\n{buckets}-bucket {metric} histograms (expected error over possible worlds):");
    println!(
        "  probabilistic (this paper): {:>10.4}   ({:>5.1}% of the achievable range)",
        optimal_cost,
        pct(optimal_cost)
    );
    println!(
        "  expectation heuristic:      {:>10.4}   ({:>5.1}%)",
        expected_cost(&relation, metric, &expectation),
        pct(expected_cost(&relation, metric, &expectation))
    );
    println!(
        "  sampled-world heuristic:    {:>10.4}   ({:>5.1}%)",
        expected_cost(&relation, metric, &sampled),
        pct(expected_cost(&relation, metric, &sampled))
    );

    // Use the synopsis the way an optimiser would: estimate the expected
    // number of matches for a few movies and for a range of movies.
    println!("\npoint estimates from the probabilistic histogram:");
    let truth = relation.expected_frequencies();
    for movie in [3usize, 97, 205, 400] {
        println!(
            "  movie {movie:>3}: estimated {:.2} expected matches (true expectation {:.2})",
            optimal.estimate(movie),
            truth[movie]
        );
    }
    let range = 128..256usize;
    let est: f64 = range.clone().map(|i| optimal.estimate(i)).sum();
    let exact: f64 = range.clone().map(|i| truth[i]).sum();
    println!(
        "  range [{}, {}): estimated total {:.1} vs exact expected total {:.1}",
        range.start, range.end, est, exact
    );
    Ok(())
}
