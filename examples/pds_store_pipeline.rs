//! End-to-end `pds-store` pipeline at production-ish scale: stream more than
//! a million uncertain tuples into a partitioned synopsis store, let
//! memtables seal into per-partition segments, compact, merge the partition
//! synopses into one global histogram, and serve range-count/sum AQP queries
//! — comparing the sharded pipeline's accuracy against a monolithic
//! single-build histogram over the same data, and the compact binary segment
//! encoding against its JSON debug form.
//!
//! ```text
//! cargo run --release --example pds_store_pipeline
//! ```

use std::time::Instant;

use probsyn::aqp::{answer_with_histogram, answer_with_store, FrequencyQuery};
use probsyn::prelude::*;

const N: usize = 8192;
const PARTITIONS: usize = 8;
const RECORDS: usize = 1_050_000;
const SEAL_THRESHOLD: usize = 100_000;
const SEGMENT_BUCKETS: usize = 48;
const GLOBAL_BUCKETS: usize = 32;

/// Parses `--threads <n>` (or `--threads=<n>`) from the command line; with
/// the flag present the ingest runs `ingest_batch` on `n` pool workers plus
/// `n` background seal workers, otherwise the serial per-record path runs.
fn threads_arg() -> Option<usize> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--threads" {
            return args.next().and_then(|v| v.parse().ok());
        }
        if let Some(v) = arg.strip_prefix("--threads=") {
            return v.parse().ok();
        }
    }
    None
}

/// `--reopen`: run the whole pipeline against a crash-durable store
/// (write-ahead log + install-time segment blobs + manifest in a temp
/// directory), then drop it, reopen from disk alone and assert the
/// reopened store answers every query identically.
fn reopen_arg() -> bool {
    std::env::args().skip(1).any(|a| a == "--reopen")
}

/// `--telemetry-gate`: instead of the full pipeline, measure batched
/// ingest+seal throughput with the telemetry knob on and off (alternating
/// rounds, min-of-N against scheduler noise) and fail unless the
/// instrumented store stays within 5% of the uninstrumented one.
fn telemetry_gate_arg() -> bool {
    std::env::args().skip(1).any(|a| a == "--telemetry-gate")
}

/// The `--telemetry-gate` benchmark: telemetry must cost (almost) nothing.
fn run_telemetry_gate() -> Result<()> {
    const GATE_RECORDS: usize = 400_000;
    const ROUNDS: usize = 3;
    let records: Vec<StreamRecord> = basic_stream(BasicStreamConfig {
        n: N,
        skew: 0.7,
        seed: 42,
    })
    .take(GATE_RECORDS)
    .collect();

    let run_once = |telemetry: bool| -> Result<f64> {
        let mut config = StoreConfig::new(
            PartitionSpec::uniform(N, PARTITIONS)?,
            SEAL_THRESHOLD,
            SEGMENT_BUCKETS,
            SynopsisKind::Histogram(ErrorMetric::Sse),
        );
        config.telemetry = telemetry;
        let store = SynopsisStore::new(config)?;
        let t = Instant::now();
        store.ingest_batch(records.iter().cloned())?;
        store.seal_all()?;
        let secs = t.elapsed().as_secs_f64();
        // The timed work actually was (or was not) instrumented.
        let scrape = store.render_metrics();
        assert!(scrape.contains(&format!(
            "pds_store_telemetry_enabled {}",
            u8::from(telemetry)
        )));
        if telemetry {
            assert!(scrape.contains("pds_store_ingest_batch_seconds_count"));
        }
        Ok(secs)
    };

    // Warm-up round per knob (page cache, allocator, cpu clocks), then
    // alternate measured rounds so drift hits both knobs equally.
    run_once(false)?;
    run_once(true)?;
    let (mut on_min, mut off_min) = (f64::INFINITY, f64::INFINITY);
    for round in 0..ROUNDS {
        let off = run_once(false)?;
        let on = run_once(true)?;
        off_min = off_min.min(off);
        on_min = on_min.min(on);
        println!(
            "round {round}: telemetry off {:.0} tuples/s, on {:.0} tuples/s",
            GATE_RECORDS as f64 / off,
            GATE_RECORDS as f64 / on,
        );
    }
    let overhead = on_min / off_min - 1.0;
    println!(
        "best-of-{ROUNDS}: off {off_min:.3}s, on {on_min:.3}s — overhead {:.2}%",
        overhead * 100.0,
    );
    assert!(
        on_min <= off_min * 1.05,
        "telemetry overhead {:.2}% exceeds the 5% ingest budget",
        overhead * 100.0,
    );
    println!("telemetry gate passed: instrumented ingest within 5% of uninstrumented");
    Ok(())
}

fn main() -> Result<()> {
    if telemetry_gate_arg() {
        return run_telemetry_gate();
    }
    // ------------------------------------------------------------ ingestion
    let threads = threads_arg();
    if let Some(t) = threads {
        pds_core::pool::set_num_threads(Some(t));
    }
    let config = StoreConfig::new(
        PartitionSpec::uniform(N, PARTITIONS)?,
        SEAL_THRESHOLD,
        SEGMENT_BUCKETS,
        SynopsisKind::Histogram(ErrorMetric::Sse),
    );
    let durable_dir = reopen_arg()
        .then(|| std::env::temp_dir().join(format!("pds-pipeline-reopen-{}", std::process::id())));
    let store = match &durable_dir {
        Some(dir) => {
            let _ = std::fs::remove_dir_all(dir);
            println!(
                "durable mode: WAL + segment blobs + manifest in {}",
                dir.display()
            );
            SynopsisStore::open_with_wal(config.clone(), dir)?
        }
        None => SynopsisStore::new(config.clone())?,
    };
    let store = match threads {
        Some(t) => store.with_background_sealing(t),
        None => store,
    };
    let records: Vec<StreamRecord> = basic_stream(BasicStreamConfig {
        n: N,
        skew: 0.7,
        seed: 42,
    })
    .take(RECORDS)
    .collect();

    let t0 = Instant::now();
    match threads {
        Some(_) => store.ingest_batch(records.iter().cloned())?,
        None => store.ingest_all(records.iter().cloned())?,
    }
    store.flush()?;
    let ingest_secs = t0.elapsed().as_secs_f64();
    let mid_stats = store.stats();
    println!(
        "ingested {RECORDS} tuples into {PARTITIONS} partitions in {ingest_secs:.2}s \
         ({:.0} tuples/s, {} auto-seals, {})",
        RECORDS as f64 / ingest_secs,
        mid_stats.seals,
        match threads {
            Some(t) => format!("batch ingest on {t} thread(s) + background sealing"),
            None => "chunked ingest, pool default threads, inline sealing".to_string(),
        },
    );

    // A query served while data is still live in memtables.
    let live_query = FrequencyQuery::RangeSum {
        start: 0,
        end: N - 1,
    };
    println!(
        "live range-count estimate over the full domain: {:.1} ({} records still in memtables)",
        answer_with_store(&store, live_query).estimate,
        mid_stats.live_records,
    );

    // ------------------------------------------------------ seal + compact
    let t1 = Instant::now();
    store.seal_all()?;
    let stats = store.stats();
    println!(
        "sealed the remaining memtables in {:.2}s: {} seal operations, {} segments",
        t1.elapsed().as_secs_f64(),
        stats.seals,
        stats.segments,
    );
    store.compact_all()?;
    println!(
        "compacted to {} segments (one per touched partition)",
        store.stats().segments,
    );

    // ---------------------------------------------------------- global merge
    let t2 = Instant::now();
    let merged = store.merge_global(GLOBAL_BUCKETS)?;
    println!(
        "merged the partition synopses into a global {GLOBAL_BUCKETS}-bucket histogram \
         in {:.3}s (merge-stage cost {:.3})",
        t2.elapsed().as_secs_f64(),
        merged.total_cost(),
    );

    // ------------------------------------------- monolithic reference build
    let t3 = Instant::now();
    let pairs = records.iter().map(|r| match r {
        StreamRecord::Basic { item, prob } => (*item, *prob),
        _ => unreachable!("the stream generator emits basic records"),
    });
    let relation: ProbabilisticRelation = BasicModel::from_pairs(N, pairs)?.into();
    let monolithic = build_histogram(&relation, ErrorMetric::Sse, GLOBAL_BUCKETS)?;
    println!(
        "monolithic single-build {GLOBAL_BUCKETS}-bucket histogram in {:.2}s",
        t3.elapsed().as_secs_f64(),
    );

    // ------------------------------------------------------- accuracy check
    // Exact expected answers from the per-item expectations (expectation is
    // linear, so prefix sums give every range query in O(1)).
    let exact = relation.expected_frequencies();
    let mut prefix = vec![0.0; N + 1];
    for (i, &e) in exact.iter().enumerate() {
        prefix[i + 1] = prefix[i] + e;
    }
    let exact_range = |s: usize, e: usize| prefix[e + 1] - prefix[s];

    let mut queries = Vec::new();
    for width in [1usize, 16, 256, 1024, 4096] {
        for k in 0..40 {
            let start = (k * 997 * width.max(7)) % (N - width);
            queries.push((start, start + width - 1));
        }
    }
    let mut merged_err = 0.0;
    let mut mono_err = 0.0;
    let mut store_err = 0.0;
    for &(s, e) in &queries {
        let query = FrequencyQuery::RangeSum { start: s, end: e };
        let reference = exact_range(s, e);
        store_err += (answer_with_store(&store, query).estimate - reference).abs();
        merged_err += (answer_with_histogram(&merged, query).estimate - reference).abs();
        mono_err += (answer_with_histogram(&monolithic, query).estimate - reference).abs();
    }
    store_err /= queries.len() as f64;
    merged_err /= queries.len() as f64;
    mono_err /= queries.len() as f64;
    println!(
        "mean |error| over {} range-count/sum queries: merged {merged_err:.4}, \
         monolithic {mono_err:.4} (ratio {:.2}x), per-partition store {store_err:.4}",
        queries.len(),
        merged_err / mono_err.max(1e-12),
    );
    assert!(
        merged_err <= 2.0 * mono_err + 1e-9,
        "sharded pipeline error {merged_err} exceeds 2x the monolithic error {mono_err}"
    );

    // --------------------------------------------- binary vs JSON encoding
    // A 200-bucket histogram segment over partition 0's slice of the data.
    let p0_width = N / PARTITIONS;
    let p0_pairs = records.iter().filter_map(|r| match r {
        StreamRecord::Basic { item, prob } if *item < p0_width => Some((*item, *prob)),
        _ => None,
    });
    let p0_relation: ProbabilisticRelation = BasicModel::from_pairs(p0_width, p0_pairs)?.into();
    let wide = Segment::build(
        0,
        store.segments(0)[0].records(),
        &p0_relation,
        SynopsisKind::Histogram(ErrorMetric::Sse),
        200,
    )?;
    let binary = wide.to_binary()?;
    let json = wide.to_json()?;
    println!(
        "200-bucket histogram segment: binary {} bytes, JSON {} bytes ({:.1}x smaller)",
        binary.len(),
        json.len(),
        json.len() as f64 / binary.len() as f64,
    );
    assert!(
        binary.len() * 5 <= json.len(),
        "binary encoding must be at least 5x smaller than JSON"
    );

    // ------------------------------------------------------- persistence
    let blob = store.to_binary()?;
    let restored = SynopsisStore::from_binary(&blob)?;
    let q = FrequencyQuery::RangeSum {
        start: 100,
        end: 3100,
    };
    assert_eq!(
        answer_with_store(&restored, q).estimate,
        answer_with_store(&store, q).estimate,
    );
    println!(
        "store snapshot: {} bytes for {} segments; restored copy answers identically",
        blob.len(),
        restored.stats().segments,
    );

    // ------------------------------------------------------ crash reopen
    if let Some(dir) = durable_dir {
        // Everything is sealed, so every segment's blob and manifest entry
        // is already on disk: drop the store and come back from files alone.
        let reopen_queries: Vec<FrequencyQuery> = queries
            .iter()
            .map(|&(s, e)| FrequencyQuery::RangeSum { start: s, end: e })
            .collect();
        let before: Vec<f64> = reopen_queries
            .iter()
            .map(|&q| answer_with_store(&store, q).estimate)
            .collect();
        let segments_before = store.stats().segments;
        drop(store);
        let t4 = Instant::now();
        let reopened = SynopsisStore::open_with_wal(config, &dir)?;
        let reopen_secs = t4.elapsed().as_secs_f64();
        assert_eq!(reopened.stats().segments, segments_before);
        for (q, want) in reopen_queries.iter().zip(&before) {
            let got = answer_with_store(&reopened, *q).estimate;
            assert_eq!(got, *want, "reopened store diverged on {q:?}");
        }
        println!(
            "reopened {} segments from manifest + blobs in {reopen_secs:.3}s; \
             all {} range queries answer bit-identically",
            segments_before,
            reopen_queries.len(),
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
    Ok(())
}
