//! End-to-end `pds-store` pipeline at production-ish scale: stream more than
//! a million uncertain tuples into a partitioned synopsis store, let
//! memtables seal into per-partition segments, compact, merge the partition
//! synopses into one global histogram, and serve range-count/sum AQP queries
//! — comparing the sharded pipeline's accuracy against a monolithic
//! single-build histogram over the same data, and the compact binary segment
//! encoding against its JSON debug form.
//!
//! ```text
//! cargo run --release --example pds_store_pipeline
//! ```

use std::time::Instant;

use probsyn::aqp::{answer_with_histogram, answer_with_store, FrequencyQuery};
use probsyn::prelude::*;

const N: usize = 8192;
const PARTITIONS: usize = 8;
const RECORDS: usize = 1_050_000;
const SEAL_THRESHOLD: usize = 100_000;
const SEGMENT_BUCKETS: usize = 48;
const GLOBAL_BUCKETS: usize = 32;

/// Parses `--threads <n>` (or `--threads=<n>`) from the command line; with
/// the flag present the ingest runs `ingest_batch` on `n` pool workers plus
/// `n` background seal workers, otherwise the serial per-record path runs.
fn threads_arg() -> Option<usize> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--threads" {
            return args.next().and_then(|v| v.parse().ok());
        }
        if let Some(v) = arg.strip_prefix("--threads=") {
            return v.parse().ok();
        }
    }
    None
}

/// `--reopen`: run the whole pipeline against a crash-durable store
/// (write-ahead log + install-time segment blobs + manifest in a temp
/// directory), then drop it, reopen from disk alone and assert the
/// reopened store answers every query identically.
fn reopen_arg() -> bool {
    std::env::args().skip(1).any(|a| a == "--reopen")
}

/// `--telemetry-gate`: instead of the full pipeline, measure batched
/// ingest+seal throughput with the telemetry knob on and off (alternating
/// rounds, min-of-N against scheduler noise) and fail unless the
/// instrumented store stays within 5% of the uninstrumented one.
fn telemetry_gate_arg() -> bool {
    std::env::args().skip(1).any(|a| a == "--telemetry-gate")
}

/// The `--telemetry-gate` benchmark: telemetry must cost (almost) nothing.
fn run_telemetry_gate() -> Result<()> {
    const GATE_RECORDS: usize = 400_000;
    const ROUNDS: usize = 3;
    let records: Vec<StreamRecord> = basic_stream(BasicStreamConfig {
        n: N,
        skew: 0.7,
        seed: 42,
    })
    .take(GATE_RECORDS)
    .collect();

    let run_once = |telemetry: bool| -> Result<f64> {
        let mut config = StoreConfig::new(
            PartitionSpec::uniform(N, PARTITIONS)?,
            SEAL_THRESHOLD,
            SEGMENT_BUCKETS,
            SynopsisKind::Histogram(ErrorMetric::Sse),
        );
        config.telemetry = telemetry;
        let store = SynopsisStore::new(config)?;
        let t = Instant::now();
        store.ingest_batch(records.iter().cloned())?;
        store.seal_all()?;
        let secs = t.elapsed().as_secs_f64();
        // The timed work actually was (or was not) instrumented.
        let scrape = store.render_metrics();
        assert!(scrape.contains(&format!(
            "pds_store_telemetry_enabled {}",
            u8::from(telemetry)
        )));
        if telemetry {
            assert!(scrape.contains("pds_store_ingest_batch_seconds_count"));
        }
        Ok(secs)
    };

    // Warm-up round per knob (page cache, allocator, cpu clocks), then
    // alternate measured rounds so drift hits both knobs equally.
    run_once(false)?;
    run_once(true)?;
    let (mut on_min, mut off_min) = (f64::INFINITY, f64::INFINITY);
    for round in 0..ROUNDS {
        let off = run_once(false)?;
        let on = run_once(true)?;
        off_min = off_min.min(off);
        on_min = on_min.min(on);
        println!(
            "round {round}: telemetry off {:.0} tuples/s, on {:.0} tuples/s",
            GATE_RECORDS as f64 / off,
            GATE_RECORDS as f64 / on,
        );
    }
    let overhead = on_min / off_min - 1.0;
    println!(
        "best-of-{ROUNDS}: off {off_min:.3}s, on {on_min:.3}s — overhead {:.2}%",
        overhead * 100.0,
    );
    assert!(
        on_min <= off_min * 1.05,
        "telemetry overhead {:.2}% exceeds the 5% ingest budget",
        overhead * 100.0,
    );
    println!("telemetry gate passed: instrumented ingest within 5% of uninstrumented");
    Ok(())
}

/// `--read-gate`: instead of the full pipeline, gate the three read-path
/// accelerations — segment pruning, the merged-synopsis cache and lazy
/// synopsis blocks — against their slow-path twins: every answer bitwise
/// identical, pruned point queries touching ≤ 10% of the unpruned
/// segment visits, a cached repeat-`MERGE` ≥ 10x faster than a cold one,
/// and a lazy reopen ≥ 5x faster than an eager one.
fn read_gate_arg() -> bool {
    std::env::args().skip(1).any(|a| a == "--read-gate")
}

/// One counter's value in a store's Prometheus-style text exposition.
fn scrape_counter(store: &SynopsisStore, name: &str) -> u64 {
    let text = store.render_metrics();
    text.lines()
        .find_map(|line| {
            line.strip_prefix(name)
                .and_then(|rest| rest.trim().parse().ok())
        })
        .unwrap_or_else(|| panic!("metric {name} missing from scrape"))
}

/// The `--read-gate` benchmark and equivalence gate.
fn run_read_gate() -> Result<()> {
    // ------------------------------------------------- phase A: pruning
    // 40 bursts per partition, each confined to a disjoint 16-item band,
    // sealed burst by burst: 8 partitions x 40 bands = 320 segments whose
    // support fences tile the domain — the shape pruning exists for.
    const BANDS: usize = 40;
    const BAND_WIDTH: usize = 16;
    let part_width = N / PARTITIONS;
    let burst = |k: usize| -> Vec<StreamRecord> {
        let mut records = Vec::new();
        for p in 0..PARTITIONS {
            for j in 0..BAND_WIDTH {
                let item = p * part_width + k * BAND_WIDTH + j;
                for rep in 0..4usize {
                    let prob = 0.05 + ((item * 7 + rep * 3) % 17) as f64 * 0.05;
                    records.push(StreamRecord::Basic { item, prob });
                }
            }
        }
        records
    };
    let banded = |prune: bool| -> Result<SynopsisStore> {
        let mut config = StoreConfig::new(
            PartitionSpec::uniform(N, PARTITIONS)?,
            usize::MAX, // manual seals: one segment per burst per partition
            SEGMENT_BUCKETS,
            SynopsisKind::Histogram(ErrorMetric::Sse),
        );
        config.prune = prune;
        let store = SynopsisStore::new(config)?;
        for k in 0..BANDS {
            store.ingest_batch(burst(k))?;
            store.seal_all()?;
        }
        Ok(store)
    };
    let pruned = banded(true)?;
    let unpruned = banded(false)?;
    let segments = pruned.stats().segments;
    assert!(
        segments >= 200,
        "the prune phase needs >= 200 segments, built {segments}"
    );

    // Point queries and narrow ranges across the covered region, answered
    // by both stores: bitwise-equal values, order-of-magnitude fewer
    // segment visits on the pruning store.
    let covered = BANDS * BAND_WIDTH;
    for q in 0..2_000usize {
        let item = (q / PARTITIONS) * 131 % covered + (q % PARTITIONS) * part_width;
        let hi = (item + q % BAND_WIDTH).min(N - 1);
        assert_eq!(
            pruned.range_estimate(item, item).to_bits(),
            unpruned.range_estimate(item, item).to_bits(),
            "pruned point estimate diverged at item {item}"
        );
        assert_eq!(
            pruned.range_estimate(item, hi).to_bits(),
            unpruned.range_estimate(item, hi).to_bits(),
            "pruned range estimate diverged at [{item}, {hi}]"
        );
    }
    let pruned_visits = scrape_counter(&pruned, "pds_store_segments_visited_total");
    let full_visits = scrape_counter(&unpruned, "pds_store_segments_visited_total");
    let visit_ratio = pruned_visits as f64 / full_visits as f64;
    println!(
        "prune phase: {segments} segments, 4 000 queries — {pruned_visits} pruned-path \
         segment visits vs {full_visits} full-walk ({:.2}% touched), all bitwise-equal",
        visit_ratio * 100.0,
    );
    assert!(
        visit_ratio <= 0.10,
        "pruned queries touched {:.2}% of the unpruned segment visits (budget 10%)",
        visit_ratio * 100.0,
    );

    // -------------------------------------------- phase B: merge cache
    // Alternating rounds: evict with a different budget, time a cold
    // merge, time the cached repeat; min-of-N against scheduler noise.
    const MERGE_ROUNDS: usize = 3;
    let (mut cold_min, mut warm_min) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..MERGE_ROUNDS {
        pruned.merge_global(GLOBAL_BUCKETS - 1)?; // evict the cached entry
        let t = Instant::now();
        let cold = pruned.merge_global(GLOBAL_BUCKETS)?;
        cold_min = cold_min.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        let warm = pruned.merge_global(GLOBAL_BUCKETS)?;
        warm_min = warm_min.min(t.elapsed().as_secs_f64());
        assert_eq!(
            cold.to_binary()?,
            warm.to_binary()?,
            "cached MERGE must replay byte-identically"
        );
    }
    assert!(scrape_counter(&pruned, "pds_store_merge_cache_hits_total") >= MERGE_ROUNDS as u64);
    let merge_speedup = cold_min / warm_min;
    println!(
        "merge-cache phase: cold merge {:.3}ms, cached repeat {:.3}ms — {merge_speedup:.0}x, \
         byte-identical",
        cold_min * 1e3,
        warm_min * 1e3,
    );
    assert!(
        merge_speedup >= 10.0,
        "cached repeat-MERGE speedup {merge_speedup:.1}x is under the 10x bar"
    );

    // -------------------------------------------- phase C: lazy blocks
    // A durable store of 256 wavelet segments with dense coefficient
    // blocks (~tens of KB each): an eager reopen must read, CRC and
    // decode every block; a lazy reopen maps footers and prune metadata
    // only.
    const LAZY_PARTS: usize = 4;
    const LAZY_ROUNDS: usize = 64;
    let lazy_config = |lazy_blocks: bool| -> Result<StoreConfig> {
        let mut config = StoreConfig::new(
            PartitionSpec::uniform(N, LAZY_PARTS)?,
            usize::MAX,
            N / LAZY_PARTS, // keep every Haar coefficient: decode-heavy blobs
            SynopsisKind::Wavelet,
        );
        config.lazy_blocks = lazy_blocks;
        Ok(config)
    };
    let dir = std::env::temp_dir().join(format!("pds-read-gate-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let store = SynopsisStore::open_with_wal(lazy_config(true)?, &dir)?;
        let mut stream = basic_stream(BasicStreamConfig {
            n: N,
            skew: 0.4,
            seed: 9,
        });
        for _ in 0..LAZY_ROUNDS {
            store.ingest_batch(stream.by_ref().take(3_000))?;
            store.seal_all()?;
        }
        assert_eq!(store.stats().segments, LAZY_PARTS * LAZY_ROUNDS);
    }

    let time_reopen = |lazy_blocks: bool| -> Result<(f64, SynopsisStore)> {
        let config = lazy_config(lazy_blocks)?;
        let t = Instant::now();
        let store = SynopsisStore::open_with_wal(config, &dir)?;
        Ok((t.elapsed().as_secs_f64(), store))
    };
    // Warm-up pair (page cache), then alternating timed rounds.
    time_reopen(false)?;
    time_reopen(true)?;
    let (mut eager_min, mut lazy_min) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..3 {
        let (eager_secs, _) = time_reopen(false)?;
        let (lazy_secs, lazy_store) = time_reopen(true)?;
        eager_min = eager_min.min(eager_secs);
        lazy_min = lazy_min.min(lazy_secs);
        assert_eq!(
            scrape_counter(&lazy_store, "pds_store_block_loads_total"),
            0,
            "a lazy reopen must not touch any synopsis block"
        );
    }
    let reopen_speedup = eager_min / lazy_min;
    println!(
        "lazy-reopen phase: {} segments — eager {:.2}ms, lazy {:.2}ms ({reopen_speedup:.1}x)",
        LAZY_PARTS * LAZY_ROUNDS,
        eager_min * 1e3,
        lazy_min * 1e3,
    );
    assert!(
        reopen_speedup >= 5.0,
        "lazy reopen speedup {reopen_speedup:.1}x is under the 5x bar"
    );

    // Bitwise equivalence of the two reopen modes over a query grid (this
    // is what forces the lazy store to actually load blocks).
    let grid = |store: &SynopsisStore| -> Vec<u64> {
        let mut out = Vec::new();
        for lo in (0..N).step_by(97) {
            out.push(store.estimate(lo).to_bits());
            out.push(store.range_estimate(lo, lo + 250).to_bits());
            out.push(store.range_estimate(lo, N - 1).to_bits());
        }
        out
    };
    let (_, eager_store) = time_reopen(false)?;
    let eager_grid = grid(&eager_store);
    drop(eager_store);
    let (_, lazy_store) = time_reopen(true)?;
    assert_eq!(
        grid(&lazy_store),
        eager_grid,
        "lazy and eager reopens diverged on the query grid"
    );
    drop(lazy_store);
    let _ = std::fs::remove_dir_all(&dir);
    println!(
        "read gate passed: <= 10% segment touches, {merge_speedup:.0}x cached MERGE, \
         {reopen_speedup:.1}x lazy reopen, all bitwise-equal"
    );
    Ok(())
}

/// `--vfs-gate`: instead of the full pipeline, replay a WAL-shaped durable
/// write workload twice — once through the `pds_core::vfs` passthrough the
/// store's durable paths route through, once through the raw `std::fs`
/// calls it replaced — and fail unless the passthrough stays within 5% of
/// the direct calls (alternating rounds, min-of-N against scheduler noise).
fn vfs_gate_arg() -> bool {
    std::env::args().skip(1).any(|a| a == "--vfs-gate")
}

/// The `--vfs-gate` benchmark: with no fault armed, the fault-injectable
/// I/O layer must cost (almost) nothing over the `std::fs` calls it wraps.
///
/// Two halves, each a "passthrough vs raw" comparison:
///
/// * **Timed** — the store's exact per-record WAL append shape:
///   [`pds_store::wal::frame_record`] (serialise + CRC-frame) followed by
///   a buffered write, into a group-commit staging buffer.  The vfs run
///   routes the write through [`pds_core::vfs::write_all`] — what
///   `PartitionWal::append` does since the refactor — the baseline issues
///   the raw `write_all` the pre-refactor code issued.  Per-record appends
///   are the only place the per-call check (one relaxed atomic load)
///   could show — on a syscall it is noise by construction — and keeping
///   the timed loop off the disk keeps the gate sharp: fsync latency on a
///   shared box swings tens of percent between runs, which would drown
///   the very cost being gated.
/// * **Untimed** — the full file-backed WAL round (append, group commit,
///   rotation, segment-blob publish) against both backends, asserting the
///   vfs run leaves **byte-identical** files behind: a passthrough must
///   pass through.
fn run_vfs_gate() -> Result<()> {
    use std::io::{BufWriter, Write};

    const FRAMES: usize = 300_000;
    const FRAME_BYTES: usize = 64;
    const ROUNDS: usize = 12;
    // Any label works: nothing is armed, so the gate times the pure
    // passthrough — exactly what production runs.
    const SITE: &str = "wal-append";

    let root = std::env::temp_dir().join(format!("pds-vfs-gate-{}", std::process::id()));
    let log_hint = root.join("wal.log"); // fault-scope hint only; never opened

    let records: Vec<StreamRecord> = basic_stream(BasicStreamConfig {
        n: N,
        skew: 0.7,
        seed: 42,
    })
    .take(10_000)
    .collect();

    // Timed half: one all-in-memory group-commit round over the real
    // framed-append shape.  Returns wall time plus a checksum so the
    // compiler cannot elide the writes.
    let run_timed = |via_vfs: bool| -> Result<(f64, u64)> {
        const COMMIT_EVERY: usize = 10_000;
        let mut staging: Vec<u8> = Vec::with_capacity(COMMIT_EVERY * 48);
        let mut checksum = 0u64;
        let t = Instant::now();
        for i in 0..FRAMES {
            let frame = pds_store::wal::frame_record(&records[i % records.len()])?;
            let io = if via_vfs {
                pds_core::vfs::write_all(SITE, &log_hint, &mut staging, frame.as_bytes())
            } else {
                staging.write_all(frame.as_bytes())
            };
            io.map_err(|e| PdsError::InvalidParameter {
                message: format!("vfs gate append failed: {e}"),
            })?;
            if (i + 1) % COMMIT_EVERY == 0 {
                // Group commit: hand the batch off and reuse the buffer.
                checksum = checksum
                    .rotate_left(7)
                    .wrapping_add(staging.iter().map(|&b| u64::from(b)).sum::<u64>());
                staging.clear();
            }
        }
        Ok((t.elapsed().as_secs_f64(), checksum))
    };

    // Untimed half: the full WAL-shaped round against real files — appends
    // through a BufWriter, flush+fdatasync group commits, a log rotation
    // by atomic rename, and a stage/sync/rename/dir-sync blob publish.
    // Returns a checksum over every byte left on disk.
    let run_files = |via_vfs: bool| -> std::io::Result<u64> {
        const FILE_FRAMES: usize = 50_000;
        let dir = root.join(if via_vfs { "vfs" } else { "std" });
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir)?;
        let live = dir.join("wal-0001.log");
        let retired = dir.join("wal-0000.retired");
        let mut frame = [0u8; FRAME_BYTES];
        let open = |path: &std::path::Path| -> std::io::Result<std::fs::File> {
            if via_vfs {
                pds_core::vfs::open_append(SITE, path, true)
            } else {
                std::fs::OpenOptions::new()
                    .append(true)
                    .create(true)
                    .open(path)
            }
        };
        let mut path = dir.join("wal-0000.log");
        let mut writer = BufWriter::new(open(&path)?);
        for i in 0..FILE_FRAMES {
            frame[..8].copy_from_slice(&(i as u64).to_le_bytes());
            if via_vfs {
                pds_core::vfs::write_all(SITE, &path, &mut writer, &frame)?;
            } else {
                writer.write_all(&frame)?;
            }
            if (i + 1) % (FILE_FRAMES / 5) == 0 {
                if via_vfs {
                    pds_core::vfs::flush(SITE, &path, &mut writer)?;
                    pds_core::vfs::sync_data(SITE, &path, writer.get_ref())?;
                } else {
                    writer.flush()?;
                    writer.get_ref().sync_data()?;
                }
            }
            if i + 1 == FILE_FRAMES / 2 {
                // Rotation: retire the synced log, open a fresh one.
                drop(writer);
                if via_vfs {
                    pds_core::vfs::rename(SITE, &path, &retired)?;
                } else {
                    std::fs::rename(&path, &retired)?;
                }
                path = live.clone();
                writer = BufWriter::new(open(&path)?);
            }
        }
        if via_vfs {
            pds_core::vfs::flush(SITE, &path, &mut writer)?;
            pds_core::vfs::sync_data(SITE, &path, writer.get_ref())?;
        } else {
            writer.flush()?;
            writer.get_ref().sync_data()?;
        }
        drop(writer);

        // Segment-blob style publish: stage, sync, rename, sync dir.
        let blob: Vec<u8> = (0..64 * 1024usize)
            .map(|i| (i.wrapping_mul(131)) as u8)
            .collect();
        let stage = dir.join("seg-0-1.bin.tmp");
        let published = dir.join("seg-0-1.bin");
        if via_vfs {
            pds_core::vfs::write(SITE, &stage, &blob)?;
            pds_core::vfs::sync_path(SITE, &stage)?;
            pds_core::vfs::rename(SITE, &stage, &published)?;
            pds_core::vfs::sync_dir(SITE, &dir)?;
        } else {
            std::fs::write(&stage, &blob)?;
            std::fs::File::open(&stage)?.sync_data()?;
            std::fs::rename(&stage, &published)?;
            std::fs::File::open(&dir)?.sync_all()?;
        }

        let mut names: Vec<std::path::PathBuf> = std::fs::read_dir(&dir)?
            .map(|e| e.map(|e| e.path()))
            .collect::<std::io::Result<_>>()?;
        names.sort();
        let mut checksum = 0u64;
        for name in names {
            for (i, b) in std::fs::read(&name)?.iter().enumerate() {
                checksum = checksum
                    .rotate_left(7)
                    .wrapping_add(u64::from(*b))
                    .wrapping_add(i as u64);
            }
        }
        Ok(checksum)
    };

    let io_err = |e: std::io::Error| PdsError::InvalidParameter {
        message: format!("vfs gate I/O failed: {e}"),
    };
    std::fs::create_dir_all(&root).map_err(io_err)?;

    // Correctness first: the passthrough must pass through, byte for byte.
    let std_files = run_files(false).map_err(io_err)?;
    let vfs_files = run_files(true).map_err(io_err)?;
    assert_eq!(
        vfs_files, std_files,
        "the vfs passthrough must leave byte-identical files behind"
    );
    println!("file round: vfs and std::fs backends left byte-identical WAL + blob files");

    // Warm-up round per backend, then alternate measured rounds so drift
    // hits both equally (same protocol as the telemetry gate).
    let (_, std_sum) = run_timed(false)?;
    let (_, vfs_sum) = run_timed(true)?;
    assert_eq!(
        vfs_sum, std_sum,
        "the two backends buffered different bytes"
    );
    // Paired rounds: each round measures both backends back to back (the
    // order swapping each round so drift favours neither side) and
    // contributes one vfs/raw ratio.  The gate is the **median** ratio —
    // adjacent-in-time pairs cancel machine drift, and the median shrugs
    // off the occasional descheduled round that would whipsaw a
    // min-of-N comparison on a shared box.
    let mut ratios = Vec::with_capacity(ROUNDS);
    for round in 0..ROUNDS {
        let vfs_first = round % 2 == 0;
        let (first, _) = run_timed(vfs_first)?;
        let (second, _) = run_timed(!vfs_first)?;
        let (vfs_secs, std_secs) = if vfs_first {
            (first, second)
        } else {
            (second, first)
        };
        ratios.push(vfs_secs / std_secs);
        println!(
            "round {round}: raw appends {:.2}M frames/s, vfs appends {:.2}M frames/s \
             (ratio {:.3})",
            FRAMES as f64 / std_secs / 1e6,
            FRAMES as f64 / vfs_secs / 1e6,
            vfs_secs / std_secs,
        );
    }
    let _ = std::fs::remove_dir_all(&root);
    ratios.sort_by(|a, b| a.total_cmp(b));
    let median = (ratios[ROUNDS / 2 - 1] + ratios[ROUNDS / 2]) / 2.0;
    let overhead = median - 1.0;
    println!(
        "median of {ROUNDS} paired rounds: vfs/raw ratio {median:.3} — overhead {:.2}%",
        overhead * 100.0,
    );
    assert!(
        median <= 1.05,
        "vfs passthrough overhead {:.2}% exceeds the 5% budget",
        overhead * 100.0,
    );
    println!("vfs gate passed: fault-injectable passthrough within 5% of raw appends");
    Ok(())
}

fn main() -> Result<()> {
    if telemetry_gate_arg() {
        return run_telemetry_gate();
    }
    if vfs_gate_arg() {
        return run_vfs_gate();
    }
    if read_gate_arg() {
        return run_read_gate();
    }
    // ------------------------------------------------------------ ingestion
    let threads = threads_arg();
    if let Some(t) = threads {
        pds_core::pool::set_num_threads(Some(t));
    }
    let config = StoreConfig::new(
        PartitionSpec::uniform(N, PARTITIONS)?,
        SEAL_THRESHOLD,
        SEGMENT_BUCKETS,
        SynopsisKind::Histogram(ErrorMetric::Sse),
    );
    let durable_dir = reopen_arg()
        .then(|| std::env::temp_dir().join(format!("pds-pipeline-reopen-{}", std::process::id())));
    let store = match &durable_dir {
        Some(dir) => {
            let _ = std::fs::remove_dir_all(dir);
            println!(
                "durable mode: WAL + segment blobs + manifest in {}",
                dir.display()
            );
            SynopsisStore::open_with_wal(config.clone(), dir)?
        }
        None => SynopsisStore::new(config.clone())?,
    };
    let store = match threads {
        Some(t) => store.with_background_sealing(t),
        None => store,
    };
    let records: Vec<StreamRecord> = basic_stream(BasicStreamConfig {
        n: N,
        skew: 0.7,
        seed: 42,
    })
    .take(RECORDS)
    .collect();

    let t0 = Instant::now();
    match threads {
        Some(_) => store.ingest_batch(records.iter().cloned())?,
        None => store.ingest_all(records.iter().cloned())?,
    }
    store.flush()?;
    let ingest_secs = t0.elapsed().as_secs_f64();
    let mid_stats = store.stats();
    println!(
        "ingested {RECORDS} tuples into {PARTITIONS} partitions in {ingest_secs:.2}s \
         ({:.0} tuples/s, {} auto-seals, {})",
        RECORDS as f64 / ingest_secs,
        mid_stats.seals,
        match threads {
            Some(t) => format!("batch ingest on {t} thread(s) + background sealing"),
            None => "chunked ingest, pool default threads, inline sealing".to_string(),
        },
    );

    // A query served while data is still live in memtables.
    let live_query = FrequencyQuery::RangeSum {
        start: 0,
        end: N - 1,
    };
    println!(
        "live range-count estimate over the full domain: {:.1} ({} records still in memtables)",
        answer_with_store(&store, live_query).estimate,
        mid_stats.live_records,
    );

    // ------------------------------------------------------ seal + compact
    let t1 = Instant::now();
    store.seal_all()?;
    let stats = store.stats();
    println!(
        "sealed the remaining memtables in {:.2}s: {} seal operations, {} segments",
        t1.elapsed().as_secs_f64(),
        stats.seals,
        stats.segments,
    );
    store.compact_all()?;
    println!(
        "compacted to {} segments (one per touched partition)",
        store.stats().segments,
    );

    // ---------------------------------------------------------- global merge
    let t2 = Instant::now();
    let merged = store.merge_global(GLOBAL_BUCKETS)?;
    println!(
        "merged the partition synopses into a global {GLOBAL_BUCKETS}-bucket histogram \
         in {:.3}s (merge-stage cost {:.3})",
        t2.elapsed().as_secs_f64(),
        merged.total_cost(),
    );

    // ------------------------------------------- monolithic reference build
    let t3 = Instant::now();
    let pairs = records.iter().map(|r| match r {
        StreamRecord::Basic { item, prob } => (*item, *prob),
        _ => unreachable!("the stream generator emits basic records"),
    });
    let relation: ProbabilisticRelation = BasicModel::from_pairs(N, pairs)?.into();
    let monolithic = build_histogram(&relation, ErrorMetric::Sse, GLOBAL_BUCKETS)?;
    println!(
        "monolithic single-build {GLOBAL_BUCKETS}-bucket histogram in {:.2}s",
        t3.elapsed().as_secs_f64(),
    );

    // ------------------------------------------------------- accuracy check
    // Exact expected answers from the per-item expectations (expectation is
    // linear, so prefix sums give every range query in O(1)).
    let exact = relation.expected_frequencies();
    let mut prefix = vec![0.0; N + 1];
    for (i, &e) in exact.iter().enumerate() {
        prefix[i + 1] = prefix[i] + e;
    }
    let exact_range = |s: usize, e: usize| prefix[e + 1] - prefix[s];

    let mut queries = Vec::new();
    for width in [1usize, 16, 256, 1024, 4096] {
        for k in 0..40 {
            let start = (k * 997 * width.max(7)) % (N - width);
            queries.push((start, start + width - 1));
        }
    }
    let mut merged_err = 0.0;
    let mut mono_err = 0.0;
    let mut store_err = 0.0;
    for &(s, e) in &queries {
        let query = FrequencyQuery::RangeSum { start: s, end: e };
        let reference = exact_range(s, e);
        store_err += (answer_with_store(&store, query).estimate - reference).abs();
        merged_err += (answer_with_histogram(&merged, query).estimate - reference).abs();
        mono_err += (answer_with_histogram(&monolithic, query).estimate - reference).abs();
    }
    store_err /= queries.len() as f64;
    merged_err /= queries.len() as f64;
    mono_err /= queries.len() as f64;
    println!(
        "mean |error| over {} range-count/sum queries: merged {merged_err:.4}, \
         monolithic {mono_err:.4} (ratio {:.2}x), per-partition store {store_err:.4}",
        queries.len(),
        merged_err / mono_err.max(1e-12),
    );
    assert!(
        merged_err <= 2.0 * mono_err + 1e-9,
        "sharded pipeline error {merged_err} exceeds 2x the monolithic error {mono_err}"
    );

    // --------------------------------------------- binary vs JSON encoding
    // A 200-bucket histogram segment over partition 0's slice of the data.
    let p0_width = N / PARTITIONS;
    let p0_pairs = records.iter().filter_map(|r| match r {
        StreamRecord::Basic { item, prob } if *item < p0_width => Some((*item, *prob)),
        _ => None,
    });
    let p0_relation: ProbabilisticRelation = BasicModel::from_pairs(p0_width, p0_pairs)?.into();
    let wide = Segment::build(
        0,
        store.segments(0)[0].records(),
        &p0_relation,
        SynopsisKind::Histogram(ErrorMetric::Sse),
        200,
    )?;
    let binary = wide.to_binary()?;
    let json = wide.to_json()?;
    println!(
        "200-bucket histogram segment: binary {} bytes, JSON {} bytes ({:.1}x smaller)",
        binary.len(),
        json.len(),
        json.len() as f64 / binary.len() as f64,
    );
    assert!(
        binary.len() * 5 <= json.len(),
        "binary encoding must be at least 5x smaller than JSON"
    );

    // ------------------------------------------------------- persistence
    let blob = store.to_binary()?;
    let restored = SynopsisStore::from_binary(&blob)?;
    let q = FrequencyQuery::RangeSum {
        start: 100,
        end: 3100,
    };
    assert_eq!(
        answer_with_store(&restored, q).estimate,
        answer_with_store(&store, q).estimate,
    );
    println!(
        "store snapshot: {} bytes for {} segments; restored copy answers identically",
        blob.len(),
        restored.stats().segments,
    );

    // ------------------------------------------------------ crash reopen
    if let Some(dir) = durable_dir {
        // Everything is sealed, so every segment's blob and manifest entry
        // is already on disk: drop the store and come back from files alone.
        let reopen_queries: Vec<FrequencyQuery> = queries
            .iter()
            .map(|&(s, e)| FrequencyQuery::RangeSum { start: s, end: e })
            .collect();
        let before: Vec<f64> = reopen_queries
            .iter()
            .map(|&q| answer_with_store(&store, q).estimate)
            .collect();
        let segments_before = store.stats().segments;
        drop(store);
        let t4 = Instant::now();
        let reopened = SynopsisStore::open_with_wal(config, &dir)?;
        let reopen_secs = t4.elapsed().as_secs_f64();
        assert_eq!(reopened.stats().segments, segments_before);
        for (q, want) in reopen_queries.iter().zip(&before) {
            let got = answer_with_store(&reopened, *q).estimate;
            assert_eq!(got, *want, "reopened store diverged on {q:?}");
        }
        println!(
            "reopened {} segments from manifest + blobs in {reopen_secs:.3}s; \
             all {} range queries answer bit-identically",
            segments_before,
            reopen_queries.len(),
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
    Ok(())
}
