//! The `(1 + ε)`-approximate histogram construction of Section 3.5: trade a
//! provably small loss in quality for a large reduction in bucket-cost
//! evaluations, which is what makes histogram maintenance practical for large
//! probabilistic relations.
//!
//! ```text
//! cargo run --release --example approx_vs_optimal
//! ```

use std::time::Instant;

use probsyn::histogram::approx::approx_histogram;
use probsyn::histogram::oracle::oracle_for_metric;
use probsyn::histogram::DpTables;
use probsyn::prelude::*;

fn main() -> Result<()> {
    let n = 4096;
    let b = 48;
    let metric = ErrorMetric::Ssre { c: 0.5 };
    let relation: ProbabilisticRelation = mystiq_like(MystiqLikeConfig {
        n,
        avg_tuples_per_item: 4.0,
        skew: 0.8,
        seed: 99,
    })
    .into();
    println!(
        "workload: n = {n}, m = {}, metric = {metric}, B = {b}\n",
        relation.m()
    );

    let oracle = oracle_for_metric(&relation, metric);

    let start = Instant::now();
    let exact = DpTables::build(&oracle, b)?;
    let exact_cost = exact.optimal_cost(b);
    let exact_time = start.elapsed();
    println!(
        "exact DP      : cost {exact_cost:.4}, {} bucket evaluations, {:.2?}",
        n * (n + 1) / 2,
        exact_time
    );

    for eps in [0.05, 0.1, 0.25, 0.5, 1.0] {
        let start = Instant::now();
        let approx = approx_histogram(&oracle, b, eps)?;
        let time = start.elapsed();
        let cost = approx.histogram.total_cost();
        println!(
            "approx eps={eps:<4}: cost {cost:.4} ({:.3}x optimal, guarantee {:.2}x), {} bucket evaluations, {:.2?}",
            cost / exact_cost,
            1.0 + eps,
            approx.stats.bucket_evaluations,
            time
        );
        assert!(cost <= (1.0 + eps) * exact_cost + 1e-9);
    }
    println!("\nevery approximate cost stayed within its (1 + eps) guarantee.");
    Ok(())
}
