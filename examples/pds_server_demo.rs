//! The TCP front-end under concurrent load: stream 100k+ uncertain tuples
//! through `pds-server`'s `INGEST` command while query clients hammer
//! `RANGE`/`EST` against snapshot views, then prove the served store is
//! **bitwise indistinguishable** from a `SynopsisStore` driven directly by
//! the same batches — float replies use Rust's shortest round-trip
//! formatting, so even the text protocol loses no bits.  A final phase
//! arms the deterministic I/O fault injector against a durable store and
//! proves the wire surface of degraded read-only mode: `ERR DEGRADED`
//! write refusals, the `HEALTH` cause, the METRICS gauge, and bit-stable
//! reads of the acknowledged prefix.
//!
//! ```text
//! cargo run --release --example pds_server_demo
//! ```

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use probsyn::core::io::{read_stream, write_stream};
use probsyn::core::pool;
use probsyn::prelude::*;
use probsyn::server::{Server, ServerConfig, ServerHandle};

const TUPLES: usize = 120_000;
const BATCH: usize = 2_048;
const DOMAIN: usize = 4_096;
const PARTITIONS: usize = 16;
const COMPARISON_QUERIES: usize = 1_500;

/// A tiny line-protocol client.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(handle: &ServerHandle) -> std::io::Result<Client> {
        let stream = TcpStream::connect(handle.addr())?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(60)))?;
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    fn cmd(&mut self, line: &str) -> std::io::Result<String> {
        let mut framed = Vec::with_capacity(line.len() + 1);
        framed.extend_from_slice(line.as_bytes());
        framed.push(b'\n');
        self.writer.write_all(&framed)?;
        let mut reply = String::new();
        self.reader.read_line(&mut reply)?;
        Ok(reply.trim_end_matches(['\r', '\n']).to_string())
    }

    fn ok_value(&mut self, line: &str) -> std::io::Result<f64> {
        let reply = self.cmd(line)?;
        reply
            .strip_prefix("OK ")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| std::io::Error::other(format!("bad reply: {reply}")))
    }

    fn bin_body(&mut self, reply: &str) -> std::io::Result<Vec<u8>> {
        let len: usize = reply
            .strip_prefix("OK BIN ")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| std::io::Error::other(format!("bad binary reply: {reply}")))?;
        let mut bytes = vec![0u8; len];
        self.reader.read_exact(&mut bytes)?;
        Ok(bytes)
    }
}

fn store_config() -> Result<StoreConfig> {
    Ok(StoreConfig::new(
        PartitionSpec::uniform(DOMAIN, PARTITIONS)?,
        2_000,
        24,
        SynopsisKind::Histogram(ErrorMetric::Sse),
    ))
}

fn main() -> Result<()> {
    let io_err = |e: std::io::Error| PdsError::InvalidParameter {
        message: format!("demo i/o failure: {e}"),
    };
    // The server multiplexes connections over the shared pool; the demo
    // drives one ingest client plus several query clients concurrently, so
    // make sure enough workers exist for all of them to be in flight.
    if pool::num_threads() < 4 {
        pool::set_num_threads(Some(4));
    }
    let queriers = (pool::num_threads() - 1).clamp(1, 3);

    let store = Arc::new(SynopsisStore::new(store_config()?)?);
    let server = Server::bind(
        Arc::clone(&store),
        ("127.0.0.1", 0),
        ServerConfig::default(),
    )
    .map_err(io_err)?;
    let handle = server.handle();
    let serve_thread = std::thread::spawn(move || server.serve());
    println!(
        "pds-server listening on {} ({} pool workers, {queriers} query clients)\n",
        handle.addr(),
        pool::num_threads()
    );

    // Deterministic workload, pre-encoded into protocol batches.
    let records: Vec<StreamRecord> = basic_stream(BasicStreamConfig {
        n: DOMAIN,
        skew: 0.7,
        seed: 2009,
    })
    .take(TUPLES)
    .collect();
    let batches: Vec<String> = records
        .chunks(BATCH)
        .map(|batch| {
            let mut bytes = Vec::new();
            write_stream(batch.iter(), &mut bytes)?;
            String::from_utf8(bytes).map_err(|_| PdsError::InvalidParameter {
                message: "stream text must be UTF-8".into(),
            })
        })
        .collect::<Result<_>>()?;

    // Phase 1: ingest through the socket while query clients race.
    let done = AtomicBool::new(false);
    let concurrent_queries = AtomicU64::new(0);
    let ingest_started = Instant::now();
    let ingest_time = std::thread::scope(|scope| -> std::io::Result<Duration> {
        for q in 0..queriers {
            let (handle, done, counter) = (&handle, &done, &concurrent_queries);
            scope.spawn(move || -> std::io::Result<()> {
                let mut client = Client::connect(handle)?;
                let mut i = q as u64;
                while !done.load(Ordering::SeqCst) {
                    let lo = (i as usize * 131) % DOMAIN;
                    let hi = lo + (i as usize % 257);
                    let range = client.ok_value(&format!("RANGE {lo} {hi}"))?;
                    let point = client.ok_value(&format!("EST {}", (i as usize * 17) % DOMAIN))?;
                    assert!(range.is_finite() && point.is_finite());
                    counter.fetch_add(2, Ordering::Relaxed);
                    i += 1;
                }
                client.cmd("QUIT")?;
                Ok(())
            });
        }
        let mut ingest = Client::connect(&handle)?;
        for text in &batches {
            let lines = text.lines().count();
            let mut payload = format!("INGEST {lines}\n").into_bytes();
            payload.extend_from_slice(text.as_bytes());
            ingest.writer.write_all(&payload)?;
            let mut reply = String::new();
            ingest.reader.read_line(&mut reply)?;
            if !reply.starts_with("OK ") {
                return Err(std::io::Error::other(format!("ingest refused: {reply}")));
            }
        }
        ingest.cmd("QUIT")?;
        let elapsed = ingest_started.elapsed();
        done.store(true, Ordering::SeqCst);
        Ok(elapsed)
    })
    .map_err(io_err)?;

    let served_queries = concurrent_queries.load(Ordering::Relaxed);
    println!(
        "ingested {TUPLES} tuples over the socket in {ingest_time:.2?} \
         ({:.0} tuples/s) in {} batches of {BATCH}",
        TUPLES as f64 / ingest_time.as_secs_f64(),
        batches.len(),
    );
    println!("answered {served_queries} snapshot-view queries concurrently with ingest\n");

    // Phase 2: a mirror store fed the identical batches directly — same
    // text, same parser, same chunking.
    let mirror = SynopsisStore::new(store_config()?)?;
    for text in &batches {
        mirror.ingest_batch(read_stream(text.as_bytes())?)?;
    }

    // Phase 3: quiesced bitwise comparison, server reply vs direct call.
    let mut client = Client::connect(&handle).map_err(io_err)?;
    let compare_started = Instant::now();
    let mut compared = 0usize;
    for step in 0..COMPARISON_QUERIES {
        let lo = (step * 89) % DOMAIN;
        let hi = lo + (step * 13) % 501;
        let via_server = client
            .ok_value(&format!("RANGE {lo} {hi}"))
            .map_err(io_err)?;
        let direct = mirror.range_estimate(lo, hi);
        assert_eq!(
            via_server.to_bits(),
            direct.to_bits(),
            "RANGE {lo} {hi}: server {via_server} != direct {direct}"
        );
        compared += 1;
    }
    let compare_time = compare_started.elapsed();
    println!(
        "verified {compared} RANGE queries bitwise-equal to direct calls \
         in {compare_time:.2?} ({:.0} queries/s round-trip)",
        compared as f64 / compare_time.as_secs_f64(),
    );

    // STATS must agree exactly with the direct counters.
    let stats = mirror.stats();
    let via_server = client.cmd("STATS").map_err(io_err)?;
    let direct = format!(
        "OK ingested={} live={} seals={} segments={} split={}",
        stats.ingested_records, stats.live_records, stats.seals, stats.segments, stats.split_tuples
    );
    assert_eq!(via_server, direct, "STATS diverged from the direct store");
    println!("STATS agrees with the direct store: {via_server}");

    // A global merged histogram over the socket, byte-identical to the
    // library call after both stores seal.
    client.cmd("SEAL").map_err(io_err)?;
    mirror.seal_all()?;
    let reply = client.cmd("MERGE 48").map_err(io_err)?;
    let over_socket = client.bin_body(&reply).map_err(io_err)?;
    let direct = mirror.merge_global(48)?.to_binary()?;
    assert_eq!(over_socket, direct, "MERGE envelope diverged");
    let merged = Histogram::from_binary(&over_socket)?;
    println!(
        "MERGE 48 returned {} bytes over the socket, byte-identical to \
         merge_global(48) ({} buckets)",
        over_socket.len(),
        merged.num_buckets()
    );

    // Phase 4: METRICS scrape gate.  The exposition must cover both layers,
    // agree exactly with the client side's own command tally, and be
    // internally consistent: every histogram's +Inf bucket equals its
    // _count, every value is finite and non-negative.
    let reply = client.cmd("METRICS").map_err(io_err)?;
    let text = String::from_utf8(client.bin_body(&reply).map_err(io_err)?).map_err(|_| {
        PdsError::InvalidParameter {
            message: "METRICS exposition must be UTF-8".into(),
        }
    })?;
    let series: Vec<(String, f64)> = text
        .lines()
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| {
            let (name, value) = l.rsplit_once(' ').expect("metric line has a value");
            (name.to_string(), value.parse().expect("numeric value"))
        })
        .collect();
    let value = |name: &str| -> f64 {
        series
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("series {name} missing from METRICS"))
    };
    for (name, v) in &series {
        assert!(
            v.is_finite() && *v >= 0.0,
            "series {name} has bad value {v}"
        );
    }
    // Per-verb counters vs the demo's own tally.  The querier threads
    // incremented `concurrent_queries` once per RANGE and once per EST, and
    // this METRICS request counted itself before rendering.
    let verb = |v: &str| value(&format!("pds_server_requests_total{{verb=\"{v}\"}}")) as u64;
    let querier_pairs = served_queries / 2;
    assert_eq!(verb("range"), querier_pairs + COMPARISON_QUERIES as u64);
    assert_eq!(verb("est"), querier_pairs);
    assert_eq!(verb("ingest"), batches.len() as u64);
    assert_eq!(verb("stats"), 1);
    assert_eq!(verb("seal"), 1);
    assert_eq!(verb("merge"), 1);
    assert_eq!(verb("metrics"), 1);
    assert_eq!(verb("quit"), queriers as u64 + 1);
    assert_eq!(value("pds_server_err_replies_total"), 0.0);
    assert_eq!(
        value("pds_server_connections_total") as u64,
        queriers as u64 + 2
    );
    assert_eq!(value("pds_server_connections_active"), 1.0);
    assert_eq!(value("pds_store_ingested_records_total") as usize, TUPLES);
    assert!(value("pds_store_seal_build_seconds_count") >= 1.0);
    // Histogram consistency: +Inf cumulative bucket == _count, for every
    // histogram of both layers.
    let mut histograms_checked = 0usize;
    for (name, v) in &series {
        let Some(idx) = name.find("_bucket{") else {
            continue;
        };
        if !name.contains("le=\"+Inf\"") {
            continue;
        }
        let inner = name[idx + "_bucket".len()..]
            .trim_start_matches('{')
            .trim_end_matches('}');
        let kept: Vec<&str> = inner.split(',').filter(|l| !l.starts_with("le=")).collect();
        let count_name = if kept.is_empty() {
            format!("{}_count", &name[..idx])
        } else {
            format!("{}_count{{{}}}", &name[..idx], kept.join(","))
        };
        assert_eq!(*v, value(&count_name), "{name} disagrees with {count_name}");
        histograms_checked += 1;
    }
    assert!(histograms_checked >= 10, "too few histograms in METRICS");
    let distinct: std::collections::BTreeSet<&str> = series
        .iter()
        .map(|(n, _)| n.split('{').next().unwrap_or(n))
        .collect();
    assert!(
        distinct.len() >= 25,
        "METRICS must cover at least 25 distinct series, got {}",
        distinct.len()
    );
    assert!(distinct.iter().any(|n| n.starts_with("pds_server_")));
    assert!(distinct.iter().any(|n| n.starts_with("pds_store_")));
    println!(
        "METRICS scrape: {} series over {} names span both layers; per-verb \
         counters match the client tally, {histograms_checked} histograms \
         internally consistent",
        series.len(),
        distinct.len(),
    );

    client.cmd("QUIT").map_err(io_err)?;
    handle.shutdown();
    serve_thread
        .join()
        .map_err(|_| PdsError::InvalidParameter {
            message: "server thread panicked".into(),
        })?
        .map_err(io_err)?;
    println!("\nserver drained and shut down cleanly");

    // Phase 5: fault-injected degradation over the wire.  A second server
    // fronts a *durable* store; a persistently failing WAL append flips it
    // into sticky degraded read-only mode, and every surface that reports
    // health must agree — the HEALTH verb, the `ERR DEGRADED` write
    // refusals, and the METRICS gauge — while reads keep serving the
    // acknowledged prefix, bit for bit.
    use pds_core::vfs::fault::{self, ErrorClass, FaultSpec};

    let dir = std::env::temp_dir().join(format!("pds-server-demo-degrade-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Arc::new(SynopsisStore::open_with_wal(store_config()?, &dir)?);
    let server = Server::bind(
        Arc::clone(&store),
        ("127.0.0.1", 0),
        ServerConfig::default(),
    )
    .map_err(io_err)?;
    let handle = server.handle();
    let serve_thread = std::thread::spawn(move || server.serve());
    println!(
        "\ndurable server listening on {} for the degradation phase",
        handle.addr()
    );

    let mut client = Client::connect(&handle).map_err(io_err)?;
    let ingest = |client: &mut Client, text: &str| -> std::io::Result<String> {
        let mut payload = format!("INGEST {}\n", text.lines().count()).into_bytes();
        payload.extend_from_slice(text.as_bytes());
        client.writer.write_all(&payload)?;
        let mut reply = String::new();
        client.reader.read_line(&mut reply)?;
        Ok(reply.trim_end_matches(['\r', '\n']).to_string())
    };

    // Acknowledge one batch on a healthy store, then pin a query answer.
    let reply = ingest(&mut client, &batches[0]).map_err(io_err)?;
    assert!(reply.starts_with("OK "), "healthy ingest refused: {reply}");
    assert_eq!(client.cmd("HEALTH").map_err(io_err)?, "OK healthy");
    let acked_answer = client.ok_value("RANGE 0 4095").map_err(io_err)?;

    // A persistently failing disk at the WAL append site, scoped to this
    // store's directory.
    let guard = fault::arm(FaultSpec::persistent("wal-append", ErrorClass::Eio).scoped(&dir));
    let refusal = ingest(&mut client, &batches[1]).map_err(io_err)?;
    assert!(
        refusal.starts_with("ERR DEGRADED ") && refusal.contains("injected"),
        "degraded ingest must answer ERR DEGRADED with the cause: {refusal}"
    );
    let health = client.cmd("HEALTH").map_err(io_err)?;
    assert!(
        health.starts_with("OK degraded ") && health.contains("wal-append"),
        "HEALTH must surface the degradation cause: {health}"
    );
    let seal_refusal = client.cmd("SEAL").map_err(io_err)?;
    assert!(
        seal_refusal.starts_with("ERR DEGRADED "),
        "every write verb must refuse on a degraded store: {seal_refusal}"
    );
    // Reads keep serving the acknowledged prefix, bit for bit.
    let during = client.ok_value("RANGE 0 4095").map_err(io_err)?;
    assert_eq!(
        during.to_bits(),
        acked_answer.to_bits(),
        "degraded reads must keep the acknowledged answer"
    );
    let reply = client.cmd("METRICS").map_err(io_err)?;
    let text = String::from_utf8(client.bin_body(&reply).map_err(io_err)?).map_err(|_| {
        PdsError::InvalidParameter {
            message: "METRICS exposition must be UTF-8".into(),
        }
    })?;
    assert!(
        text.lines().any(|l| l == "pds_store_degraded 1"),
        "the degradation gauge must be set in METRICS"
    );

    // Disarming the injector does not heal the store: degradation is
    // sticky until the directory is reopened.
    drop(guard);
    let health = client.cmd("HEALTH").map_err(io_err)?;
    assert!(
        health.starts_with("OK degraded "),
        "degradation must be sticky after the fault clears: {health}"
    );
    println!(
        "degradation phase: ERR DEGRADED refusals, HEALTH cause, METRICS \
         gauge and bit-stable reads all agree; mode is sticky once the \
         fault clears"
    );

    client.cmd("QUIT").map_err(io_err)?;
    handle.shutdown();
    serve_thread
        .join()
        .map_err(|_| PdsError::InvalidParameter {
            message: "server thread panicked".into(),
        })?
        .map_err(io_err)?;
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
    println!("degraded server drained and shut down cleanly");
    Ok(())
}
