//! Wavelet compression of an uncertain TPC-H-style relation (Section 4 of
//! the paper): compute the expected-SSE-optimal Haar synopsis, compare it to
//! the sampled-world heuristic, and look at the restricted non-SSE
//! thresholding on a smaller slice.
//!
//! ```text
//! cargo run --release --example wavelet_compression
//! ```

use probsyn::prelude::*;
use probsyn::wavelet::nonsse::{build_restricted_wavelet, expected_wavelet_cost};
use probsyn::wavelet::sse::{expected_sse, selection_error_percentage, ExpectedCoefficients};
use probsyn::wavelet::{sampled_world_selection, sampled_world_wavelet};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<()> {
    // An uncertain lineitem→partkey style relation with 4096 part keys.
    let relation: ProbabilisticRelation = tpch_like(TpchLikeConfig {
        n: 4096,
        tuples: 24_576,
        max_alternatives: 4,
        locality_window: 32,
        skew: 0.5,
        seed: 13,
    })
    .into();
    println!(
        "uncertain relation: n = {} part keys, {} uncertain line items",
        relation.n(),
        relation.m()
    );

    // Expected-SSE-optimal synopses at several budgets (Theorem 7: linear time).
    println!("\nexpected SSE and retained-energy error vs coefficient budget:");
    let coeffs = ExpectedCoefficients::of(&relation);
    let mut rng = StdRng::seed_from_u64(3);
    for b in [16usize, 64, 256, 1024] {
        let optimal = build_sse_wavelet(&relation, b)?;
        let optimal_pct = selection_error_percentage(coeffs.normalised(), &optimal.indices());
        let sampled_sel = sampled_world_selection(&relation, b, &mut rng);
        let sampled_pct = selection_error_percentage(coeffs.normalised(), &sampled_sel);
        let sampled = sampled_world_wavelet(&relation, b, &mut rng)?;
        println!(
            "  B = {b:>4}: optimal energy miss {optimal_pct:>6.2}% | sampled world {sampled_pct:>6.2}% | expected SSE {:.1} vs {:.1}",
            expected_sse(&relation, &optimal),
            expected_sse(&relation, &sampled),
        );
    }

    // Reconstruction quality on a small window.
    let b = 256;
    let synopsis = build_sse_wavelet(&relation, b)?;
    let reconstruction = synopsis.reconstruct();
    let truth = relation.expected_frequencies();
    println!("\nreconstruction with B = {b} (first 8 part keys):");
    for i in 0..8 {
        println!(
            "  key {i}: expected frequency {:.2}, synopsis estimate {:.2}",
            truth[i], reconstruction[i]
        );
    }

    // Restricted non-SSE thresholding (Theorem 8) on a smaller slice: pick
    // the coefficients that minimise the expected *absolute* error instead.
    let small: ProbabilisticRelation = tpch_like(TpchLikeConfig {
        n: 128,
        tuples: 768,
        max_alternatives: 3,
        locality_window: 8,
        skew: 0.5,
        seed: 13,
    })
    .into();
    println!("\nrestricted non-SSE thresholding on a 128-key slice (B = 12):");
    for metric in [ErrorMetric::Sae, ErrorMetric::Mae] {
        let restricted = build_restricted_wavelet(&small, metric, 12)?;
        let greedy = build_sse_wavelet(&small, 12)?;
        println!(
            "  {metric}: restricted DP {:.3} vs SSE-greedy selection {:.3}",
            restricted.objective,
            expected_wavelet_cost(&small, metric, &greedy)
        );
    }
    Ok(())
}
