//! Sensor-network scenario (the value pdf model of the paper): each sensor
//! reports a small probability distribution over the frequency/level it
//! observed, and the readings of different sensors are independent.  We build
//! absolute-error and maximum-error histograms over the sensor array and use
//! them for approximate range queries with per-item guarantees.
//!
//! ```text
//! cargo run --release --example sensor_readings
//! ```

use probsyn::prelude::*;

fn main() -> Result<()> {
    // 256 sensors along a pipeline; each reports 2-4 possible levels with
    // probabilities (the remaining mass means "no reading", i.e. level 0).
    let relation: ProbabilisticRelation = zipf_value_pdf(ValuePdfConfig {
        n: 256,
        max_entries_per_item: 4,
        max_frequency: 12.0,
        skew: 0.6,
        zero_mass: 0.15,
        seed: 7,
    })
    .into();
    println!(
        "sensor relation: {} sensors, {} (level, probability) pairs, |V| = {}",
        relation.n(),
        relation.m(),
        ValueDomain::from_relation(&relation).len()
    );

    // A sum-absolute-error histogram: the workhorse synopsis for answering
    // "what is the expected level around position x?".
    let sae = ErrorMetric::Sae;
    let histogram = build_histogram(&relation, sae, 16)?;
    println!("\n16-bucket SAE histogram:");
    for bucket in histogram.buckets().iter().take(6) {
        println!(
            "  sensors [{:>3}, {:>3}] -> level {:.2} (expected absolute error {:.3})",
            bucket.start,
            bucket.end,
            bucket.representative,
            bucket.cost / bucket.width() as f64
        );
    }
    println!("  ... ({} buckets total)", histogram.num_buckets());
    println!(
        "expected SAE of the synopsis: {:.3}",
        expected_cost(&relation, sae, &histogram)
    );

    // A maximum-absolute-error histogram: every individual sensor estimate
    // carries the same worst-case expected-error guarantee.
    let mae = ErrorMetric::Mae;
    let guarded = build_histogram(&relation, mae, 16)?;
    println!(
        "\n16-bucket MAE histogram: max per-sensor expected error = {:.3}",
        expected_cost(&relation, mae, &guarded)
    );

    // Approximate query answering: expected total level over a window.
    let window = 32..96usize;
    let estimated: f64 = window.clone().map(|i| histogram.estimate(i)).sum();
    let moments = item_moments(&relation);
    let exact: f64 = window.clone().map(|i| moments[i].mean).sum();
    println!(
        "\nrange query E[sum of levels in sensors [{}, {})]:",
        window.start, window.end
    );
    println!("  from the 16-bucket synopsis: {estimated:.1}");
    println!("  exact expectation:           {exact:.1}");
    println!(
        "  relative deviation:          {:.2}%",
        100.0 * (estimated - exact).abs() / exact.max(1e-9)
    );

    // How much resolution do we give up?  Sweep the budget.
    println!("\nexpected SAE vs number of buckets:");
    for b in [2usize, 4, 8, 16, 32, 64, 128, 256] {
        let h = build_histogram(&relation, sae, b)?;
        println!("  B = {b:>3}: {:.3}", expected_cost(&relation, sae, &h));
    }
    Ok(())
}
